//! Fault injection and fault-simulation campaigns.
//!
//! The properly-designed conditions of Def. 3.2 (safeness,
//! conflict-freeness, no shared resources, no combinational loops) are
//! exactly the invariants a hardware design loses first under faults, and
//! the observational semantics (Defs. 3.3–3.6) give a precise oracle for
//! "did the fault change externally visible behaviour". This module puts
//! both to work as the canonical EDA robustness workload: simulate a
//! *golden* (fault-free) run, then re-simulate under injected faults and
//! classify each fault by what the environment could observe.
//!
//! * [`FaultPlan`] describes *what* to inject: stuck-at-0/1 and
//!   single-bit-flip faults on data-path ports (transient or permanent),
//!   and token loss/duplication in a control place. Plans are enumerable
//!   ([`FaultPlan::sweep_data_ports`]) and seedable
//!   ([`FaultPlan::random_faults`]).
//! * The engine applies a plan via `Simulator::with_faults`: port faults
//!   hook value assignment inside the evaluator
//!   (`Evaluator::step_forced`), control faults perturb the marking before
//!   each step. The clean path is untouched — no plan, no hook.
//! * [`run_campaign`] fans a one-fault-per-job sweep over a
//!   [`Fleet`](crate::fleet::Fleet), compares each faulty event structure
//!   against the golden one, and partitions the faults into
//!   [`FaultClass::Masked`] / [`FaultClass::SilentCorruption`] /
//!   [`FaultClass::Detected`] (a Def. 3.2 runtime monitor fired) /
//!   [`FaultClass::Hang`], with a per-vertex vulnerability map renderable
//!   as a heat-graded DOT graph.

use crate::env::Environment;
use crate::equiv::{compare_structures, EquivalenceVerdict};
use crate::error::SimError;
use crate::extract::event_structure;
use crate::fleet::{Fleet, FleetStats, SimJob};
use crate::trace::{Termination, Trace};
use etpn_core::dot::{datapath_dot_heat, DataHeat};
use etpn_core::{Etpn, EventStructure, Marking, PlaceId, PortId, Value};
use etpn_cov::CovDb;
use etpn_obs as obs;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// What a fault does at its site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The port's value is forced to the defined constant `0`.
    StuckAt0,
    /// The port's value is forced to the defined constant `1`.
    StuckAt1,
    /// Bit `b` (mod 64) of a defined value is inverted; `⊥` is left alone
    /// (there is no bit to flip in an undefined signal).
    BitFlip(u32),
    /// The token in a control place vanishes (a lost request/ack).
    TokenLoss,
    /// The token in a control place is doubled (a spurious re-fire). On a
    /// safeness-enforcing run this trips the Def. 3.2(2) monitor at once.
    TokenDup,
}

impl FaultKind {
    /// True for the kinds that apply to data-path ports.
    pub fn is_data(self) -> bool {
        matches!(
            self,
            FaultKind::StuckAt0 | FaultKind::StuckAt1 | FaultKind::BitFlip(_)
        )
    }

    /// True for the kinds that apply to control places.
    pub fn is_control(self) -> bool {
        !self.is_data()
    }

    /// The faulty value a data fault produces from the clean value `v`.
    /// Control kinds return `v` unchanged.
    pub fn apply(self, v: Value) -> Value {
        match self {
            FaultKind::StuckAt0 => Value::Def(0),
            FaultKind::StuckAt1 => Value::Def(1),
            FaultKind::BitFlip(b) => match v {
                Value::Def(x) => Value::Def(x ^ (1i64 << (b % 64))),
                Value::Undef => Value::Undef,
            },
            FaultKind::TokenLoss | FaultKind::TokenDup => v,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::StuckAt0 => write!(f, "stuck-at-0"),
            FaultKind::StuckAt1 => write!(f, "stuck-at-1"),
            FaultKind::BitFlip(b) => write!(f, "bit-flip({b})"),
            FaultKind::TokenLoss => write!(f, "token-loss"),
            FaultKind::TokenDup => write!(f, "token-dup"),
        }
    }
}

/// Where a fault strikes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// A data-path port (input or output side).
    Port(PortId),
    /// A control place.
    Place(PlaceId),
}

/// When a fault is active.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultWindow {
    /// Active during exactly one control step.
    Transient(u64),
    /// Active from the given step onwards.
    Permanent(u64),
}

impl FaultWindow {
    /// Is the fault active at `step`?
    pub fn active_at(self, step: u64) -> bool {
        match self {
            FaultWindow::Transient(s) => step == s,
            FaultWindow::Permanent(from) => step >= from,
        }
    }
}

impl std::fmt::Display for FaultWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultWindow::Transient(s) => write!(f, "transient@{s}"),
            FaultWindow::Permanent(s) => write!(f, "permanent@{s}"),
        }
    }
}

/// One concrete fault: a kind at a site over a window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// Where it strikes.
    pub site: FaultSite,
    /// What it does.
    pub kind: FaultKind,
    /// When it is active.
    pub window: FaultWindow,
}

impl Fault {
    /// Human-readable account, resolving the site against the design
    /// (unresolvable ids degrade to raw form, as in `SimError::describe`).
    pub fn describe(&self, g: &Etpn) -> String {
        let site = match self.site {
            FaultSite::Port(p) => match g.dp.ports().get(p) {
                Some(port) => {
                    let owner =
                        g.dp.vertices()
                            .get(port.vertex)
                            .map_or_else(|| port.vertex.to_string(), |vx| vx.name.clone());
                    format!("{p} of `{owner}`")
                }
                None => format!("{p} (unresolved)"),
            },
            FaultSite::Place(s) => match g.ctl.places().get(s) {
                Some(place) => format!("{s} (`{}`)", place.name),
                None => format!("{s} (unresolved)"),
            },
        };
        format!("{} on {site}, {}", self.kind, self.window)
    }
}

/// A set of faults to inject into one run.
///
/// The typical campaign plan holds exactly one fault
/// ([`FaultPlan::single`]); multi-fault plans model correlated upsets.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// The single-fault plan campaigns sweep with.
    pub fn single(fault: Fault) -> Self {
        Self {
            faults: vec![fault],
        }
    }

    /// Add a fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The faults of this plan.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Is any *data* (port) fault active at `step`? The engine bypasses
    /// the memo cache exactly on such steps: a forced value is not a pure
    /// function of the step configuration, so neither serving nor
    /// publishing a cache entry would be sound.
    pub fn port_faults_active_at(&self, step: u64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.site, FaultSite::Port(_)) && f.kind.is_data() && f.window.active_at(step)
        })
    }

    /// The value port `p` takes at `step`, after all active data faults on
    /// it are applied to the clean value `v`.
    pub fn force_value(&self, p: PortId, v: Value, step: u64) -> Value {
        self.faults.iter().fold(v, |v, f| {
            if f.site == FaultSite::Port(p) && f.kind.is_data() && f.window.active_at(step) {
                f.kind.apply(v)
            } else {
                v
            }
        })
    }

    /// Apply the control faults active at `step` to the marking. Token
    /// loss/duplication only acts on a place that currently holds a token
    /// (there is nothing to lose or duplicate otherwise). These mutate the
    /// configuration *before* evaluation, so the evaluation itself stays a
    /// pure — and cacheable — function of the perturbed configuration.
    ///
    /// Returns whether the marking was mutated: the compiled backend's
    /// incremental mirrors are built on the assumption that tokens only
    /// move through transition firings, so any hit here must trigger a
    /// conservative full resynchronisation.
    pub fn apply_control(&self, m: &mut Marking, step: u64) -> bool {
        let mut changed = false;
        for f in &self.faults {
            let FaultSite::Place(s) = f.site else {
                continue;
            };
            if !f.window.active_at(step) || m.count(s) == 0 {
                continue;
            }
            match f.kind {
                FaultKind::TokenLoss => {
                    m.remove(s);
                    changed = true;
                }
                FaultKind::TokenDup => {
                    m.add(s);
                    changed = true;
                }
                _ => {}
            }
        }
        changed
    }

    /// Enumerate the one-fault-per-campaign sweep: every `kind` at every
    /// live data-path port. Stuck-at faults are permanent from step 0;
    /// bit flips are transient at `transient_step`.
    pub fn sweep_data_ports(g: &Etpn, kinds: &[FaultKind], transient_step: u64) -> Vec<Fault> {
        let mut out = Vec::new();
        for p in g.dp.ports().ids() {
            for &kind in kinds.iter().filter(|k| k.is_data()) {
                let window = match kind {
                    FaultKind::BitFlip(_) => FaultWindow::Transient(transient_step),
                    _ => FaultWindow::Permanent(0),
                };
                out.push(Fault {
                    site: FaultSite::Port(p),
                    kind,
                    window,
                });
            }
        }
        out
    }

    /// Enumerate transient token loss and duplication at every control
    /// place, striking at `step`.
    pub fn sweep_control_places(g: &Etpn, step: u64) -> Vec<Fault> {
        let mut out = Vec::new();
        for s in g.ctl.places().ids() {
            for kind in [FaultKind::TokenLoss, FaultKind::TokenDup] {
                out.push(Fault {
                    site: FaultSite::Place(s),
                    kind,
                    window: FaultWindow::Transient(step),
                });
            }
        }
        out
    }

    /// Sample `n` faults at random (seed-deterministic): mostly data
    /// faults over the ports, a fifth control faults over the places, with
    /// strike steps drawn from `0..max_step`.
    pub fn random_faults(g: &Etpn, seed: u64, n: usize, max_step: u64) -> Vec<Fault> {
        let ports: Vec<PortId> = g.dp.ports().ids().collect();
        let places: Vec<PlaceId> = g.ctl.places().ids().collect();
        if ports.is_empty() {
            return Vec::new();
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let step = rng.gen_range(0..max_step.max(1));
                if !places.is_empty() && rng.gen_bool(0.2) {
                    Fault {
                        site: FaultSite::Place(places[rng.gen_range(0..places.len())]),
                        kind: if rng.gen_bool(0.5) {
                            FaultKind::TokenLoss
                        } else {
                            FaultKind::TokenDup
                        },
                        window: FaultWindow::Transient(step),
                    }
                } else {
                    let kind = match rng.gen_range(0..3u32) {
                        0 => FaultKind::StuckAt0,
                        1 => FaultKind::StuckAt1,
                        _ => FaultKind::BitFlip(rng.gen_range(0..16u32)),
                    };
                    Fault {
                        site: FaultSite::Port(ports[rng.gen_range(0..ports.len())]),
                        kind,
                        window: if rng.gen_bool(0.5) {
                            FaultWindow::Transient(step)
                        } else {
                            FaultWindow::Permanent(step)
                        },
                    }
                }
            })
            .collect()
    }
}

/// The observable effect of one injected fault, relative to the golden run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultClass {
    /// The external event structure is unchanged: the fault was absorbed.
    Masked,
    /// The run completed normally but the environment saw different
    /// events — the dangerous case (SDC).
    SilentCorruption,
    /// The run aborted with a diagnosable [`SimError`]: a Def. 3.2 runtime
    /// monitor fired (unsafe marking, input conflict, combinational loop),
    /// or the job panicked / ran an input dry and the fleet contained it.
    Detected,
    /// The run was cut short or stuck: deadlock, step limit, or wall-clock
    /// budget (and the golden run was not).
    Hang,
}

impl FaultClass {
    /// All classes, in report order.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::Masked,
        FaultClass::SilentCorruption,
        FaultClass::Detected,
        FaultClass::Hang,
    ];
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultClass::Masked => write!(f, "masked"),
            FaultClass::SilentCorruption => write!(f, "sdc"),
            FaultClass::Detected => write!(f, "detected"),
            FaultClass::Hang => write!(f, "hang"),
        }
    }
}

/// One fault's campaign verdict.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// The injected fault.
    pub fault: Fault,
    /// Its classification.
    pub class: FaultClass,
    /// Supporting detail: the first event difference, the error
    /// description, or the hang termination.
    pub detail: String,
}

/// Knobs of a [`run_campaign`] sweep.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Data-fault kinds swept over every port.
    pub kinds: Vec<FaultKind>,
    /// Also sweep token loss/duplication over every control place.
    pub include_control: bool,
    /// Strike step for transient faults (bit flips, token faults).
    pub transient_step: u64,
    /// Fleet worker threads (`0` = one per CPU).
    pub workers: usize,
    /// Bounded retries for panicked jobs (cache bypassed on retry).
    pub retries: u64,
    /// Per-job wall-clock budget; overruns classify as [`FaultClass::Hang`].
    pub wall_budget: Option<Duration>,
    /// Collect functional coverage over the campaign: the golden run and
    /// every faulty job record a [`CovDb`], merged into
    /// [`CampaignReport::coverage`]. A campaign exercises the design under
    /// every single-fault perturbation, so its merged coverage is a cheap
    /// upper-bound probe of reachable-but-untested behaviour.
    pub coverage: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            kinds: vec![
                FaultKind::StuckAt0,
                FaultKind::StuckAt1,
                FaultKind::BitFlip(0),
            ],
            include_control: false,
            transient_step: 1,
            workers: 0,
            retries: 1,
            wall_budget: None,
            coverage: false,
        }
    }
}

/// The resilience report of one campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// One verdict per planned fault, in sweep order.
    pub outcomes: Vec<FaultOutcome>,
    /// How the golden run ended.
    pub golden_termination: Termination,
    /// External events of the golden run.
    pub golden_events: usize,
    /// The golden run re-executed after the sweep produced the identical
    /// event structure — i.e. no faulty job leaked state into the clean
    /// path (via the cache or otherwise).
    pub golden_unchanged: bool,
    /// Fleet scheduling/cache/panic counters for the faulty batch.
    pub fleet: FleetStats,
    /// Coverage merged over the golden run and every faulty job, when
    /// [`CampaignConfig::coverage`] was set.
    pub coverage: Option<CovDb>,
    planned: usize,
}

impl CampaignReport {
    /// Number of faults classified as `class`.
    pub fn count(&self, class: FaultClass) -> usize {
        self.outcomes.iter().filter(|o| o.class == class).count()
    }

    /// The masked/SDC/detected/hang partition is *total*: every planned
    /// fault got exactly one class and none was dropped. A `false` here
    /// means a campaign abort.
    pub fn is_total_partition(&self) -> bool {
        self.outcomes.len() == self.planned
            && FaultClass::ALL
                .iter()
                .map(|&c| self.count(c))
                .sum::<usize>()
                == self.planned
    }

    /// Silent corruptions per data-path vertex (raw-vertex-id indexed):
    /// the vulnerability profile. A vertex scores once for each of its
    /// ports' faults that corrupted the output without being detected.
    pub fn sdc_by_vertex(&self, g: &Etpn) -> Vec<u64> {
        let mut counts = vec![0u64; g.dp.vertices().capacity_bound()];
        for o in &self.outcomes {
            if o.class != FaultClass::SilentCorruption {
                continue;
            }
            if let FaultSite::Port(p) = o.fault.site {
                if let Some(port) = g.dp.ports().get(p) {
                    counts[port.vertex.idx()] += 1;
                }
            }
        }
        counts
    }

    /// The vulnerability map as a heat-graded DOT graph (white = no SDC,
    /// deep red = most SDC-prone vertex), companion to `dot --heat`.
    pub fn vulnerability_dot(&self, g: &Etpn) -> String {
        datapath_dot_heat(
            g,
            &DataHeat {
                vertex_counts: &self.sdc_by_vertex(g),
            },
        )
    }

    /// Multi-line human-readable resilience report.
    pub fn summary(&self, g: &Etpn) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fault campaign: {} faults, golden {:?} with {} events",
            self.planned, self.golden_termination, self.golden_events
        );
        for class in FaultClass::ALL {
            let _ = writeln!(s, "  {class:<8} {}", self.count(class));
        }
        let _ = writeln!(
            s,
            "  partition total: {}",
            if self.is_total_partition() {
                "yes"
            } else {
                "NO"
            }
        );
        let _ = writeln!(
            s,
            "  golden unchanged: {}",
            if self.golden_unchanged { "yes" } else { "NO" }
        );
        let sdc: Vec<&FaultOutcome> = self
            .outcomes
            .iter()
            .filter(|o| o.class == FaultClass::SilentCorruption)
            .collect();
        if !sdc.is_empty() {
            let _ = writeln!(
                s,
                "  silent corruptions (worst first {} shown):",
                sdc.len().min(10)
            );
            for o in sdc.iter().take(10) {
                let _ = writeln!(s, "    {} — {}", o.fault.describe(g), o.detail);
            }
        }
        if self.fleet.panics > 0 {
            let _ = writeln!(
                s,
                "  contained panics: {} ({} retried)",
                self.fleet.panics, self.fleet.retried
            );
        }
        s
    }
}

/// Classify one faulty result against the golden event structure.
fn classify(
    g: &Etpn,
    golden: &EventStructure,
    golden_termination: Termination,
    result: &Result<Trace, SimError>,
) -> (FaultClass, String) {
    match result {
        Err(e) => (FaultClass::Detected, e.describe(g)),
        Ok(t) if t.termination.is_hang() && !golden_termination.is_hang() => (
            FaultClass::Hang,
            format!("{:?} after {} steps", t.termination, t.steps),
        ),
        Ok(t) => match compare_structures(golden, &event_structure(g, t)) {
            EquivalenceVerdict::Equivalent => (FaultClass::Masked, String::new()),
            EquivalenceVerdict::Different(d) => (FaultClass::SilentCorruption, d),
        },
    }
}

/// Run a one-fault-per-job campaign: the golden run (uncached, on the
/// calling thread), then every planned fault as a fleet job, then the
/// golden run once more to prove the clean path is unperturbed.
///
/// `proto` is the job template — design, environment, policy, step budget
/// and register initialisation are all taken from it; the sweep only adds
/// the fault plan (and `cfg.wall_budget`, when set).
pub fn run_campaign<'g, E>(
    proto: &SimJob<'g, E>,
    cfg: &CampaignConfig,
) -> Result<CampaignReport, SimError>
where
    E: Environment + Clone + Send,
{
    let _span = obs::span("fault.campaign");
    let g = proto.design();
    let instrument = |j: SimJob<'g, E>| if cfg.coverage { j.with_coverage() } else { j };
    let golden_trace = instrument(proto.clone()).run_uncached()?;
    let golden_es = event_structure(g, &golden_trace);

    let mut faults = FaultPlan::sweep_data_ports(g, &cfg.kinds, cfg.transient_step);
    if cfg.include_control {
        faults.extend(FaultPlan::sweep_control_places(g, cfg.transient_step));
    }
    let planned = faults.len();

    let jobs: Vec<SimJob<'g, E>> = faults
        .iter()
        .map(|&f| {
            let mut j = instrument(proto.clone()).with_faults(FaultPlan::single(f));
            if let Some(b) = cfg.wall_budget {
                j = j.wall_budget(b);
            }
            j
        })
        .collect();
    let fleet = Fleet::new(cfg.workers).with_retries(cfg.retries);
    let batch = fleet.run_batch(jobs);

    let outcomes: Vec<FaultOutcome> = faults
        .into_iter()
        .zip(&batch.results)
        .map(|(fault, result)| {
            let (class, detail) = classify(g, &golden_es, golden_trace.termination, result);
            FaultOutcome {
                fault,
                class,
                detail,
            }
        })
        .collect();

    // Prove the clean path unperturbed: the golden run, repeated after the
    // sweep, must reproduce the identical observation.
    let golden_again = proto.clone().run_uncached()?;
    let golden_unchanged = golden_again.termination == golden_trace.termination
        && compare_structures(&golden_es, &event_structure(g, &golden_again)).is_equivalent();

    // Campaign coverage: the golden DB merged with the faulty batch's.
    let coverage = match (golden_trace.cov.clone(), batch.coverage) {
        (Some(mut db), faulty) => {
            if let Some(f) = &faulty {
                let _ = db.merge(f);
            }
            Some(db)
        }
        (None, faulty) => faulty,
    };
    let report = CampaignReport {
        outcomes,
        golden_termination: golden_trace.termination,
        golden_events: golden_trace.event_count(),
        golden_unchanged,
        fleet: batch.stats,
        coverage,
        planned,
    };
    let reg = obs::global();
    reg.counter("fault.campaign.runs").inc();
    reg.counter("fault.campaign.faults").add(planned as u64);
    reg.counter("fault.campaign.masked")
        .add(report.count(FaultClass::Masked) as u64);
    reg.counter("fault.campaign.sdc")
        .add(report.count(FaultClass::SilentCorruption) as u64);
    reg.counter("fault.campaign.detected")
        .add(report.count(FaultClass::Detected) as u64);
    reg.counter("fault.campaign.hangs")
        .add(report.count(FaultClass::Hang) as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::env::ScriptedEnv;
    use crate::fleet::EvalCache;
    use etpn_core::{EtpnBuilder, Op};
    use std::sync::Arc;

    /// s0: load r := a + b;  s1: emit r to y;  then terminate.
    fn add_once() -> Etpn {
        let mut b = EtpnBuilder::new();
        let a = b.input("a");
        let c = b.input("b");
        let add = b.operator(Op::Add, 2, "add");
        let r = b.register("r");
        let out = b.output("y");
        let arc_a = b.connect(b.out_port(a, 0), b.in_port(add, 0));
        let arc_b = b.connect(b.out_port(c, 0), b.in_port(add, 1));
        let load = b.connect(b.out_port(add, 0), b.in_port(r, 0));
        let emit = b.connect(b.out_port(r, 0), b.in_port(out, 0));
        let s0 = b.place("s0");
        let s1 = b.place("s1");
        let s_end = b.place("end");
        b.control(s0, [arc_a, arc_b, load]);
        b.control(s1, [emit]);
        b.seq(s0, s1, "t0");
        b.seq(s1, s_end, "t1");
        let t2 = b.transition("t2");
        b.flow_st(s_end, t2);
        b.mark(s0);
        b.finish().unwrap()
    }

    fn env_ab(a: i64, b: i64) -> ScriptedEnv {
        ScriptedEnv::new()
            .with_stream("a", [a])
            .with_stream("b", [b])
    }

    #[test]
    fn kinds_and_windows() {
        assert_eq!(FaultKind::StuckAt0.apply(Value::Def(41)), Value::Def(0));
        assert_eq!(FaultKind::StuckAt1.apply(Value::Undef), Value::Def(1));
        assert_eq!(FaultKind::BitFlip(0).apply(Value::Def(6)), Value::Def(7));
        assert_eq!(FaultKind::BitFlip(3).apply(Value::Undef), Value::Undef);
        assert!(FaultWindow::Transient(4).active_at(4));
        assert!(!FaultWindow::Transient(4).active_at(5));
        assert!(FaultWindow::Permanent(4).active_at(9));
        assert!(!FaultWindow::Permanent(4).active_at(3));
    }

    #[test]
    fn stuck_at_fault_corrupts_the_output() {
        let g = add_once();
        let x_out = g.dp.vertex(g.dp.vertex_by_name("a").unwrap()).outputs[0];
        let fault = Fault {
            site: FaultSite::Port(x_out),
            kind: FaultKind::StuckAt0,
            window: FaultWindow::Permanent(0),
        };
        let t = Simulator::new(&g, env_ab(3, 4))
            .with_faults(FaultPlan::single(fault))
            .run(10)
            .unwrap();
        assert_eq!(t.values_on_named_output(&g, "y"), vec![4], "a forced to 0");
        assert!(fault.describe(&g).contains("`a`"), "{}", fault.describe(&g));
    }

    #[test]
    fn transient_fault_outside_its_window_is_absorbed() {
        let g = add_once();
        let x_out = g.dp.vertex(g.dp.vertex_by_name("a").unwrap()).outputs[0];
        // The load happens at step 0; a flip at step 99 never strikes.
        let fault = Fault {
            site: FaultSite::Port(x_out),
            kind: FaultKind::BitFlip(0),
            window: FaultWindow::Transient(99),
        };
        let t = Simulator::new(&g, env_ab(3, 4))
            .with_faults(FaultPlan::single(fault))
            .run(10)
            .unwrap();
        assert_eq!(t.values_on_named_output(&g, "y"), vec![7]);
    }

    #[test]
    fn token_loss_deadlocks_a_join() {
        // t requires tokens in both s0 and s1; losing s1's token at step 0
        // leaves the net structurally stuck.
        let mut b = EtpnBuilder::new();
        let s0 = b.place("s0");
        let s1 = b.place("s1");
        let s2 = b.place("s2");
        let t = b.transition("t");
        b.flow_st(s0, t);
        b.flow_st(s1, t);
        b.flow_ts(t, s2);
        let fin = b.transition("fin");
        b.flow_st(s2, fin);
        b.mark(s0);
        b.mark(s1);
        let g = b.finish().unwrap();
        let fault = Fault {
            site: FaultSite::Place(s1),
            kind: FaultKind::TokenLoss,
            window: FaultWindow::Transient(0),
        };
        let t = Simulator::new(&g, ScriptedEnv::new())
            .with_faults(FaultPlan::single(fault))
            .run(10)
            .unwrap();
        assert_eq!(t.termination, Termination::Deadlock);
        assert!(t.termination.is_hang());
        // Without the fault the join fires and the run terminates.
        let clean = Simulator::new(&g, ScriptedEnv::new()).run(10).unwrap();
        assert_eq!(clean.termination, Termination::Terminated);
    }

    #[test]
    fn token_duplication_trips_the_safeness_monitor() {
        let g = add_once();
        let s0 = g.ctl.place_by_name("s0").unwrap();
        let fault = Fault {
            site: FaultSite::Place(s0),
            kind: FaultKind::TokenDup,
            window: FaultWindow::Transient(0),
        };
        let err = Simulator::new(&g, env_ab(1, 2))
            .with_faults(FaultPlan::single(fault))
            .run(10)
            .unwrap_err();
        assert!(matches!(err, SimError::UnsafeMarking { .. }), "{err}");
        assert!(err.is_monitor_trip(), "Def 3.2 monitor acts as detector");
    }

    #[test]
    fn sweep_enumerates_every_port_and_kind() {
        let g = add_once();
        let kinds = [
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::BitFlip(0),
        ];
        let faults = FaultPlan::sweep_data_ports(&g, &kinds, 1);
        assert_eq!(faults.len(), g.dp.ports().len() * kinds.len());
        // Every port is covered by every kind.
        for p in g.dp.ports().ids() {
            for &k in &kinds {
                assert!(faults
                    .iter()
                    .any(|f| f.site == FaultSite::Port(p) && f.kind == k));
            }
        }
        let ctl = FaultPlan::sweep_control_places(&g, 0);
        assert_eq!(ctl.len(), g.ctl.places().len() * 2);
    }

    #[test]
    fn random_faults_are_seed_deterministic() {
        let g = add_once();
        let a = FaultPlan::random_faults(&g, 42, 20, 10);
        let b = FaultPlan::random_faults(&g, 42, 20, 10);
        let c = FaultPlan::random_faults(&g, 43, 20, 10);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seed, different faults");
        assert_eq!(a.len(), 20);
    }

    /// A faulty run sharing a cache with clean runs must neither serve the
    /// clean runs corrupted values nor be served clean values on its
    /// forced steps.
    #[test]
    fn faulty_runs_do_not_pollute_a_shared_cache() {
        let g = add_once();
        let cache = Arc::new(EvalCache::new());
        let clean_before = SimJob::new(&g, env_ab(3, 4)).run(&cache).unwrap();

        let x_out = g.dp.vertex(g.dp.vertex_by_name("a").unwrap()).outputs[0];
        let fault = Fault {
            site: FaultSite::Port(x_out),
            kind: FaultKind::StuckAt0,
            window: FaultWindow::Permanent(0),
        };
        let faulty = SimJob::new(&g, env_ab(3, 4))
            .with_faults(FaultPlan::single(fault))
            .run(&cache)
            .unwrap();
        assert_eq!(faulty.values_on_named_output(&g, "y"), vec![4]);

        // The warm cache must still reproduce the clean result exactly.
        let clean_after = SimJob::new(&g, env_ab(3, 4)).run(&cache).unwrap();
        assert_eq!(
            clean_after.values_on_named_output(&g, "y"),
            clean_before.values_on_named_output(&g, "y")
        );
        assert_eq!(clean_after.values_on_named_output(&g, "y"), vec![7]);
    }

    #[test]
    fn campaign_partitions_every_fault() {
        let g = add_once();
        let proto = SimJob::new(&g, env_ab(3, 4)).max_steps(20);
        let cfg = CampaignConfig {
            include_control: true,
            workers: 2,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&proto, &cfg).unwrap();
        let expected = g.dp.ports().len() * 3 + g.ctl.places().len() * 2;
        assert_eq!(report.outcomes.len(), expected);
        assert!(report.is_total_partition(), "{}", report.summary(&g));
        assert!(report.golden_unchanged, "{}", report.summary(&g));
        assert_eq!(report.golden_termination, Termination::Terminated);
        // Stuck-at-0 on the adder output must corrupt y (3+4=7 ≠ 0), and
        // token duplication must trip the safeness monitor.
        assert!(report.count(FaultClass::SilentCorruption) > 0);
        assert!(report.count(FaultClass::Detected) > 0);
        assert!(report.count(FaultClass::Masked) > 0);
        // The summary mentions every class.
        let summary = report.summary(&g);
        for class in FaultClass::ALL {
            assert!(summary.contains(&class.to_string()), "{summary}");
        }
    }

    #[test]
    fn vulnerability_map_scores_sdc_vertices() {
        let g = add_once();
        let proto = SimJob::new(&g, env_ab(3, 4)).max_steps(20);
        let report = run_campaign(&proto, &CampaignConfig::default()).unwrap();
        let heat = report.sdc_by_vertex(&g);
        assert_eq!(heat.len(), g.dp.vertices().capacity_bound());
        assert!(
            heat.iter().sum::<u64>() > 0,
            "some vertex must be SDC-prone"
        );
        let dot = report.vulnerability_dot(&g);
        assert!(dot.starts_with("digraph datapath"));
        assert!(dot.contains("reds9"), "heat grading present:\n{dot}");
    }
}
