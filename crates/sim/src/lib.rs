//! # etpn-sim — operational semantics for the ETPN model
//!
//! Executable form of the behaviour rules of *Peng, ICPP 1988*, Def. 3.1:
//! the Petri-net token game interleaved with data-path evaluation.
//!
//! * [`mod@env`] — the environment: predefined value streams per input vertex;
//! * [`eval`] — per-step data-path evaluation (open arcs, combinatorial
//!   propagation, `⊥` handling, register latching);
//! * [`policy`] — resolution of firing nondeterminism (maximal-step,
//!   random-maximal, single-random interleaving);
//! * [`engine`] — the step loop, committing external events and register
//!   updates once per control-state activation;
//! * [`trace`] / [`extract`] — run records and extraction of the external
//!   event structure `S(Γ)` (Def. 3.5);
//! * [`compiled`] / [`dirty`] — the compile-once, simulate-many backend:
//!   per-design flat dispatch tables plus an event-driven dirty set,
//!   bit-identical to the interpreter (selected via
//!   [`engine::Simulator::with_backend`]);
//! * [`equiv`] — empirical semantic-equivalence comparison (Def. 4.1);
//! * [`determinism`] — the policy-invariance battery justifying Def. 3.2;
//! * [`fleet`] — work-stealing batch simulation over a shared, sharded
//!   memo cache for policy/seed/environment sweeps, with per-job panic
//!   isolation, bounded retries and cache-shard quarantine;
//! * [`fault`] — fault injection (stuck-at, bit-flip, token loss/dup) and
//!   fleet-backed fault-simulation campaigns classifying each fault as
//!   masked / silent corruption / detected / hang against a golden run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compiled;
pub mod coverage;
pub mod determinism;
pub mod dirty;
pub mod engine;
pub mod env;
pub mod equiv;
pub mod error;
pub mod eval;
pub mod extract;
pub mod fault;
pub mod fleet;
pub mod policy;
pub mod trace;
pub mod vcd;

pub use compiled::{get_or_compile, Backend, CompiledDesign};
pub use coverage::{coverage, coverage_excluding, CoverageReport};
pub use determinism::{check_determinism, check_determinism_with, DeterminismReport};
pub use engine::Simulator;
pub use env::{Environment, FnEnv, ScriptedEnv};
pub use equiv::{
    compare_structures, compare_values, observational_sweep, observationally_equal,
    EquivalenceVerdict,
};
pub use error::SimError;
pub use extract::event_structure;
pub use fault::{
    run_campaign, CampaignConfig, CampaignReport, Fault, FaultClass, FaultKind, FaultOutcome,
    FaultPlan, FaultSite, FaultWindow,
};
pub use fleet::{
    CacheStats, EvalCache, Fleet, FleetBatch, FleetStats, SaturationConfig, SaturationOutcome,
    SimJob,
};
pub use policy::FiringPolicy;
pub use trace::{Termination, Trace};
