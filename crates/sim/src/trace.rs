//! Execution traces: the observable record of one run.

use etpn_core::bitset::BitSet;
use etpn_core::{ArcId, Etpn, ExternalEvent, PlaceId, PortId, TransId, Value};
use etpn_cov::CovDb;

/// Why a run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Termination {
    /// No token remained in any control state (Def. 3.1(6)).
    Terminated,
    /// Tokens remain and at least one transition is token-enabled, but its
    /// guards are false and no input stream advances: a guard fixpoint.
    Quiescent,
    /// Tokens remain but *no* transition is token-enabled — the control net
    /// is structurally stuck (e.g. a join waiting on a partner token that
    /// was lost). Unlike [`Termination::Quiescent`] no guard flip could
    /// ever unblock it.
    Deadlock,
    /// The step budget ran out first.
    StepLimit,
    /// The per-job wall-clock budget ran out first (see
    /// `Simulator::with_wall_budget`).
    Budget,
}

impl Termination {
    /// True for the outcomes that mean the run was cut short or stuck
    /// rather than finishing of its own accord: [`Termination::Deadlock`],
    /// [`Termination::StepLimit`] and [`Termination::Budget`]. Fault
    /// campaigns classify these as *hangs*.
    pub fn is_hang(self) -> bool {
        matches!(
            self,
            Termination::Deadlock | Termination::StepLimit | Termination::Budget
        )
    }
}

/// The observable outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct Trace {
    /// All external events in occurrence order (ties broken by arc id).
    pub events: Vec<ExternalEvent>,
    /// Number of control steps executed.
    pub steps: u64,
    /// Number of transition firings.
    pub firings: u64,
    /// How the run ended.
    pub termination: Termination,
    /// Ports captured per step (see `Simulator::watch_ports`).
    pub watch: Vec<PortId>,
    /// One value row per executed step, aligned with `watch`.
    pub watched: Vec<Vec<Value>>,
    /// One marking snapshot (bit per place, raw-id indexed) per executed
    /// step (see `Simulator::watch_control`). Empty unless requested.
    pub marking_rows: Vec<BitSet>,
    /// The guard ports sampled into `guard_rows`, deduplicated and in
    /// raw-id order. Empty unless control watching was requested.
    pub guard_ports: Vec<PortId>,
    /// One guard-truth snapshot per executed step: bit `k` set iff
    /// `guard_ports[k]` evaluated true that step.
    pub guard_rows: Vec<BitSet>,
    /// Functional coverage collected during the run (see
    /// `Simulator::with_coverage`). `None` unless requested.
    pub cov: Option<CovDb>,
    /// Firing count per transition (raw-id indexed).
    pub fire_counts: Vec<u64>,
    /// Activation (exit) count per control state (raw-id indexed).
    pub exit_counts: Vec<u64>,
}

impl Trace {
    /// The values observed on one arc, in occurrence order.
    pub fn values_on_arc(&self, arc: ArcId) -> Vec<Value> {
        self.events
            .iter()
            .filter(|e| e.arc == arc)
            .map(|e| e.value)
            .collect()
    }

    /// The *defined* values delivered to the output vertex named `name`,
    /// in occurrence order. Convenience for asserting computed results.
    pub fn values_on_named_output(&self, g: &Etpn, name: &str) -> Vec<i64> {
        let Some(v) = g.dp.vertex_by_name(name) else {
            return Vec::new();
        };
        let Some(&ip) = g.dp.vertex(v).inputs.first() else {
            return Vec::new();
        };
        let arcs: Vec<ArcId> = g.dp.incoming_arcs(ip).to_vec();
        self.events
            .iter()
            .filter(|e| arcs.contains(&e.arc))
            .filter_map(|e| e.value.as_i64())
            .collect()
    }

    /// All values (defined or not) delivered to a named output vertex.
    pub fn raw_values_on_named_output(&self, g: &Etpn, name: &str) -> Vec<Value> {
        let Some(v) = g.dp.vertex_by_name(name) else {
            return Vec::new();
        };
        let Some(&ip) = g.dp.vertex(v).inputs.first() else {
            return Vec::new();
        };
        let arcs: Vec<ArcId> = g.dp.incoming_arcs(ip).to_vec();
        self.events
            .iter()
            .filter(|e| arcs.contains(&e.arc))
            .map(|e| e.value)
            .collect()
    }

    /// Total number of external events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Firing count of one transition.
    pub fn firings_of(&self, t: TransId) -> u64 {
        self.fire_counts.get(t.idx()).copied().unwrap_or(0)
    }

    /// Activation count of one control state.
    pub fn activations_of(&self, s: PlaceId) -> u64 {
        self.exit_counts.get(s.idx()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpn_core::{PlaceId, Value};

    fn ev(arc: u32, value: i64, step: u64) -> ExternalEvent {
        ExternalEvent {
            arc: ArcId::new(arc),
            value: Value::Def(value),
            place: PlaceId::new(0),
            step,
        }
    }

    #[test]
    fn hang_classification_of_terminations() {
        assert!(!Termination::Terminated.is_hang());
        assert!(!Termination::Quiescent.is_hang());
        assert!(Termination::Deadlock.is_hang());
        assert!(Termination::StepLimit.is_hang());
        assert!(Termination::Budget.is_hang());
    }

    #[test]
    fn per_arc_filtering() {
        let t = Trace {
            events: vec![ev(0, 1, 0), ev(1, 2, 0), ev(0, 3, 1)],
            steps: 2,
            firings: 2,
            termination: Termination::Terminated,
            watch: Vec::new(),
            watched: Vec::new(),
            marking_rows: Vec::new(),
            guard_ports: Vec::new(),
            guard_rows: Vec::new(),
            cov: None,
            fire_counts: Vec::new(),
            exit_counts: Vec::new(),
        };
        assert_eq!(
            t.values_on_arc(ArcId::new(0)),
            vec![Value::Def(1), Value::Def(3)]
        );
        assert_eq!(t.values_on_arc(ArcId::new(9)), Vec::<Value>::new());
        assert_eq!(t.event_count(), 3);
    }
}
