//! Simulation failure modes.
//!
//! Every variant records the step at which execution stopped plus the
//! offending model object, so a failure inside a long batch is
//! attributable without re-running: [`SimError::step`] gives the time
//! coordinate, and [`SimError::describe`] resolves the raw ids against the
//! design for a human-readable account (the ids alone stay `Display`able
//! for contexts that do not hold the graph).
//!
//! `describe` never panics, even when an error is resolved against a
//! design the ids do not belong to (a transformed copy, or the wrong
//! design entirely): unresolvable ids fall back to their raw form.

use etpn_core::{ArcId, Etpn, PlaceId, PortId, VertexId};

/// Errors raised during execution of the operational semantics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Two or more arcs into the same input port were open simultaneously —
    /// "a single input port cannot receive signals simultaneously from more
    /// than one resource" (paper §2, discussion of Def. 2.4).
    InputConflict {
        /// The contended input port.
        port: PortId,
        /// The simultaneously open arcs driving it.
        arcs: Vec<ArcId>,
        /// The step at which the conflict occurred.
        step: u64,
    },
    /// A combinational cycle became active (violates Def. 3.2(4)); data-path
    /// evaluation cannot reach a fixpoint.
    CombinationalLoop {
        /// A port on the cycle.
        port: PortId,
        /// The step at which the loop became active.
        step: u64,
    },
    /// A marking with more than one token on a place was reached while the
    /// engine was configured to enforce safeness (Def. 3.2(2)).
    UnsafeMarking {
        /// The over-full place.
        place: PlaceId,
        /// How many tokens it held.
        tokens: u64,
        /// The step at which it happened.
        step: u64,
    },
    /// An external input vertex read past the end of its finite stream
    /// while the engine was configured with strict inputs
    /// (`Simulator::strict_inputs`).
    InputExhausted {
        /// The input vertex whose stream ran dry.
        vertex: VertexId,
        /// The vertex name (kept inline so the error is self-describing
        /// even without the design).
        name: String,
        /// The stream position of the dry read.
        position: u64,
        /// The step at which the dry read was committed.
        step: u64,
    },
    /// The job panicked and the panic was contained by the fleet's per-job
    /// isolation boundary (`Fleet::run_batch`). The panic never reached the
    /// other jobs of the batch.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
        /// How many bounded retries were attempted before giving up.
        retries: u64,
    },
}

impl SimError {
    /// The step at which the failure occurred, when one is known
    /// ([`SimError::Panicked`] carries no step: the panic unwound the
    /// engine before the coordinate could be recorded).
    pub fn step(&self) -> Option<u64> {
        match self {
            SimError::InputConflict { step, .. }
            | SimError::CombinationalLoop { step, .. }
            | SimError::UnsafeMarking { step, .. }
            | SimError::InputExhausted { step, .. } => Some(*step),
            SimError::Panicked { .. } => None,
        }
    }

    /// True for errors that correspond to a Def. 3.2 runtime monitor
    /// firing (unsafe marking, input conflict, combinational loop): the
    /// conditions a properly designed system can never exhibit, which is
    /// exactly what makes them fault *detectors*.
    pub fn is_monitor_trip(&self) -> bool {
        matches!(
            self,
            SimError::InputConflict { .. }
                | SimError::CombinationalLoop { .. }
                | SimError::UnsafeMarking { .. }
        )
    }

    /// Resolve the raw ids against the design the error came from: names
    /// the vertex owning a contended port, the arcs' driving vertices, or
    /// the over-full place. Ids that do not resolve in `g` (stale after a
    /// transformation, or a mismatched design) degrade to their raw form
    /// instead of panicking.
    pub fn describe(&self, g: &Etpn) -> String {
        let vertex_of = |p: PortId| -> String {
            g.dp.ports()
                .get(p)
                .and_then(|port| g.dp.vertices().get(port.vertex))
                .map_or_else(|| format!("<unknown {p}>"), |vx| vx.name.clone())
        };
        match self {
            SimError::InputConflict { port, arcs, step } => {
                let drivers: Vec<String> = arcs
                    .iter()
                    .map(|&a| match g.dp.arcs().get(a) {
                        Some(arc) => format!("{a} from `{}`", vertex_of(arc.from)),
                        None => format!("{a} (unresolved)"),
                    })
                    .collect();
                format!(
                    "input port {port} of `{}` driven by {} open arcs at step {step}: {}",
                    vertex_of(*port),
                    arcs.len(),
                    drivers.join(", ")
                )
            }
            SimError::CombinationalLoop { port, step } => {
                format!(
                    "active combinational loop through port {port} of `{}` at step {step}",
                    vertex_of(*port)
                )
            }
            SimError::UnsafeMarking {
                place,
                tokens,
                step,
            } => {
                let name = g
                    .ctl
                    .places()
                    .get(*place)
                    .map_or_else(|| format!("<unknown {place}>"), |p| p.name.clone());
                format!("place {place} (`{name}`) holds {tokens} tokens at step {step}")
            }
            SimError::InputExhausted {
                vertex,
                name,
                position,
                step,
            } => {
                format!(
                    "input `{name}` ({vertex}) ran dry at stream position {position}, step {step}"
                )
            }
            SimError::Panicked { message, retries } => {
                format!("job panicked after {retries} retries: {message}")
            }
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InputConflict { port, arcs, step } => {
                write!(
                    f,
                    "input port {port} driven by {} open arcs at step {step}",
                    arcs.len()
                )
            }
            SimError::CombinationalLoop { port, step } => {
                write!(f, "active combinational loop through {port} at step {step}")
            }
            SimError::UnsafeMarking {
                place,
                tokens,
                step,
            } => {
                write!(f, "place {place} holds {tokens} tokens at step {step}")
            }
            SimError::InputExhausted {
                name,
                position,
                step,
                ..
            } => {
                write!(
                    f,
                    "input `{name}` ran dry at position {position}, step {step}"
                )
            }
            SimError::Panicked { message, retries } => {
                write!(f, "job panicked after {retries} retries: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use etpn_core::builder::EtpnBuilder;

    fn small_design() -> (Etpn, ArcId, ArcId, PlaceId) {
        let mut b = EtpnBuilder::new();
        let c1 = b.constant(1, "one");
        let c2 = b.constant(2, "two");
        let r = b.register("acc");
        let a1 = b.connect(b.out_port(c1, 0), b.in_port(r, 0));
        let a2 = b.connect(b.out_port(c2, 0), b.in_port(r, 0));
        let s0 = b.place("load");
        b.control(s0, [a1, a2]);
        let s1 = b.place("next");
        b.seq(s0, s1, "t0");
        b.mark(s0);
        (b.finish().unwrap(), a1, a2, s0)
    }

    #[test]
    fn describe_resolves_names() {
        let (g, a1, a2, s0) = small_design();

        let port = g.dp.arc(a1).to;
        let err = SimError::InputConflict {
            port,
            arcs: vec![a1, a2],
            step: 4,
        };
        let msg = err.describe(&g);
        assert!(msg.contains("`acc`"), "{msg}");
        assert!(msg.contains("`one`") && msg.contains("`two`"), "{msg}");
        assert!(msg.contains("step 4"), "{msg}");
        assert_eq!(err.step(), Some(4));

        let err = SimError::UnsafeMarking {
            place: s0,
            tokens: 2,
            step: 9,
        };
        assert!(err.describe(&g).contains("`load`"));
        assert!(err.describe(&g).contains("2 tokens"));
    }

    /// Every variant's `describe` must survive resolution against a design
    /// its ids do not exist in — out-of-range ids degrade to raw form.
    #[test]
    fn describe_never_panics_on_stale_ids() {
        let (g, ..) = small_design();
        let bogus_port = PortId::new(9_999);
        let bogus_arc = ArcId::new(9_999);
        let bogus_place = PlaceId::new(9_999);
        let bogus_vertex = VertexId::new(9_999);
        let all = vec![
            SimError::InputConflict {
                port: bogus_port,
                arcs: vec![bogus_arc],
                step: 1,
            },
            SimError::CombinationalLoop {
                port: bogus_port,
                step: 2,
            },
            SimError::UnsafeMarking {
                place: bogus_place,
                tokens: 3,
                step: 3,
            },
            SimError::InputExhausted {
                vertex: bogus_vertex,
                name: "x".into(),
                position: 7,
                step: 4,
            },
            SimError::Panicked {
                message: "boom".into(),
                retries: 1,
            },
        ];
        for err in &all {
            let described = err.describe(&g);
            assert!(!described.is_empty(), "{err:?}");
            // Display must also stay total.
            assert!(!format!("{err}").is_empty());
        }
        assert!(all[0].describe(&g).contains("unknown"));
        assert!(all[2].describe(&g).contains("unknown"));
    }

    #[test]
    fn step_and_monitor_classification() {
        let exhausted = SimError::InputExhausted {
            vertex: VertexId::new(0),
            name: "a".into(),
            position: 3,
            step: 12,
        };
        assert_eq!(exhausted.step(), Some(12));
        assert!(!exhausted.is_monitor_trip());

        let panicked = SimError::Panicked {
            message: "eval exploded".into(),
            retries: 2,
        };
        assert_eq!(panicked.step(), None);
        assert!(!panicked.is_monitor_trip());
        assert!(format!("{panicked}").contains("eval exploded"));

        let unsafe_m = SimError::UnsafeMarking {
            place: PlaceId::new(0),
            tokens: 2,
            step: 0,
        };
        assert!(unsafe_m.is_monitor_trip());
    }
}
