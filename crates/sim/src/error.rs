//! Simulation failure modes.
//!
//! Every variant records the step at which execution stopped plus the
//! offending model object, so a failure inside a long batch is
//! attributable without re-running: [`SimError::step`] gives the time
//! coordinate, and [`SimError::describe`] resolves the raw ids against the
//! design for a human-readable account (the ids alone stay `Display`able
//! for contexts that do not hold the graph).

use etpn_core::{ArcId, Etpn, PlaceId, PortId};

/// Errors raised during execution of the operational semantics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Two or more arcs into the same input port were open simultaneously —
    /// "a single input port cannot receive signals simultaneously from more
    /// than one resource" (paper §2, discussion of Def. 2.4).
    InputConflict {
        /// The contended input port.
        port: PortId,
        /// The simultaneously open arcs driving it.
        arcs: Vec<ArcId>,
        /// The step at which the conflict occurred.
        step: u64,
    },
    /// A combinational cycle became active (violates Def. 3.2(4)); data-path
    /// evaluation cannot reach a fixpoint.
    CombinationalLoop {
        /// A port on the cycle.
        port: PortId,
        /// The step at which the loop became active.
        step: u64,
    },
    /// A marking with more than one token on a place was reached while the
    /// engine was configured to enforce safeness (Def. 3.2(2)).
    UnsafeMarking {
        /// The over-full place.
        place: PlaceId,
        /// How many tokens it held.
        tokens: u64,
        /// The step at which it happened.
        step: u64,
    },
}

impl SimError {
    /// The step at which the failure occurred.
    pub fn step(&self) -> u64 {
        match self {
            SimError::InputConflict { step, .. }
            | SimError::CombinationalLoop { step, .. }
            | SimError::UnsafeMarking { step, .. } => *step,
        }
    }

    /// Resolve the raw ids against the design the error came from: names
    /// the vertex owning a contended port, the arcs' driving vertices, or
    /// the over-full place.
    pub fn describe(&self, g: &Etpn) -> String {
        let vertex_of = |p: PortId| g.dp.vertex(g.dp.port(p).vertex).name.clone();
        match self {
            SimError::InputConflict { port, arcs, step } => {
                let drivers: Vec<String> = arcs
                    .iter()
                    .map(|&a| format!("{a} from `{}`", vertex_of(g.dp.arc(a).from)))
                    .collect();
                format!(
                    "input port {port} of `{}` driven by {} open arcs at step {step}: {}",
                    vertex_of(*port),
                    arcs.len(),
                    drivers.join(", ")
                )
            }
            SimError::CombinationalLoop { port, step } => {
                format!(
                    "active combinational loop through port {port} of `{}` at step {step}",
                    vertex_of(*port)
                )
            }
            SimError::UnsafeMarking {
                place,
                tokens,
                step,
            } => {
                format!(
                    "place {place} (`{}`) holds {tokens} tokens at step {step}",
                    g.ctl.place(*place).name
                )
            }
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InputConflict { port, arcs, step } => {
                write!(
                    f,
                    "input port {port} driven by {} open arcs at step {step}",
                    arcs.len()
                )
            }
            SimError::CombinationalLoop { port, step } => {
                write!(f, "active combinational loop through {port} at step {step}")
            }
            SimError::UnsafeMarking {
                place,
                tokens,
                step,
            } => {
                write!(f, "place {place} holds {tokens} tokens at step {step}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use etpn_core::builder::EtpnBuilder;

    #[test]
    fn describe_resolves_names() {
        let mut b = EtpnBuilder::new();
        let c1 = b.constant(1, "one");
        let c2 = b.constant(2, "two");
        let r = b.register("acc");
        let a1 = b.connect(b.out_port(c1, 0), b.in_port(r, 0));
        let a2 = b.connect(b.out_port(c2, 0), b.in_port(r, 0));
        let s0 = b.place("load");
        b.control(s0, [a1, a2]);
        let s1 = b.place("next");
        b.seq(s0, s1, "t0");
        b.mark(s0);
        let g = b.finish().unwrap();

        let port = g.dp.arc(a1).to;
        let err = SimError::InputConflict {
            port,
            arcs: vec![a1, a2],
            step: 4,
        };
        let msg = err.describe(&g);
        assert!(msg.contains("`acc`"), "{msg}");
        assert!(msg.contains("`one`") && msg.contains("`two`"), "{msg}");
        assert!(msg.contains("step 4"), "{msg}");
        assert_eq!(err.step(), 4);

        let err = SimError::UnsafeMarking {
            place: s0,
            tokens: 2,
            step: 9,
        };
        assert!(err.describe(&g).contains("`load`"));
        assert!(err.describe(&g).contains("2 tokens"));
    }
}
