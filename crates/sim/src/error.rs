//! Simulation failure modes.

use etpn_core::{PlaceId, PortId};

/// Errors raised during execution of the operational semantics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Two or more arcs into the same input port were open simultaneously —
    /// "a single input port cannot receive signals simultaneously from more
    /// than one resource" (paper §2, discussion of Def. 2.4).
    InputConflict {
        /// The contended input port.
        port: PortId,
        /// The step at which the conflict occurred.
        step: u64,
    },
    /// A combinational cycle became active (violates Def. 3.2(4)); data-path
    /// evaluation cannot reach a fixpoint.
    CombinationalLoop {
        /// A port on the cycle.
        port: PortId,
        /// The step at which the loop became active.
        step: u64,
    },
    /// A marking with more than one token on a place was reached while the
    /// engine was configured to enforce safeness (Def. 3.2(2)).
    UnsafeMarking {
        /// The over-full place.
        place: PlaceId,
        /// The step at which it happened.
        step: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InputConflict { port, step } => {
                write!(
                    f,
                    "input port {port} driven by multiple open arcs at step {step}"
                )
            }
            SimError::CombinationalLoop { port, step } => {
                write!(f, "active combinational loop through {port} at step {step}")
            }
            SimError::UnsafeMarking { place, step } => {
                write!(f, "place {place} holds more than one token at step {step}")
            }
        }
    }
}

impl std::error::Error for SimError {}
