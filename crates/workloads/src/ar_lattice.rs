//! An auto-regressive lattice filter workload.
//!
//! The classic AR-filter benchmark is multiplication-heavy: **16
//! multiplications and 12 additions** per sample. We build it as a
//! six-stage lattice — each stage computes
//! `f_i = f_{i-1} + k_i · b_{i-1}` and `b_i = b_{i-1} + k_i · f_{i-1}`
//! (2 muls + 2 adds) — followed by four output-scaling multiplications,
//! matching the published operation mix.

use crate::workload::Workload;
use std::fmt::Write;

/// Lattice stages.
pub const STAGES: usize = 6;
/// Multiplications per sample.
pub const MULS: usize = 2 * STAGES + 4;
/// Additions per sample.
pub const ADDS: usize = 2 * STAGES;

/// Source text.
pub fn source() -> String {
    let ks: [i64; STAGES] = [2, -3, 1, 4, -2, 3];
    let mut body = String::new();
    let _ = writeln!(body, "            f0 = x;");
    let _ = writeln!(body, "            b0 = z0;");
    for (i, k) in ks.iter().enumerate() {
        let j = i + 1;
        let _ = writeln!(body, "            mf{j} = {k} * b{i};");
        let _ = writeln!(body, "            mb{j} = {k} * f{i};");
        let _ = writeln!(body, "            f{j} = f{i} + mf{j};");
        let _ = writeln!(body, "            b{j} = b{i} + mb{j};");
    }
    let last = STAGES;
    let _ = writeln!(body, "            o1 = 3 * f{last};");
    let _ = writeln!(body, "            o2 = -2 * b{last};");
    let _ = writeln!(body, "            o3 = 5 * o1;");
    let _ = writeln!(body, "            o4 = 2 * o2;");
    let _ = writeln!(body, "            y = o3;");
    let _ = writeln!(body, "            z0 = o4;");

    let regs: Vec<String> = (0..=STAGES)
        .flat_map(|i| [format!("f{i}"), format!("b{i}")])
        .chain((1..=STAGES).flat_map(|i| [format!("mf{i}"), format!("mb{i}")]))
        .chain([
            "z0 = 1".into(),
            "o1".into(),
            "o2".into(),
            "o3".into(),
            "o4".into(),
            "i = 0".into(),
            "cnt".into(),
        ])
        .collect();

    format!(
        "design ar_lattice {{
        in x, n;
        out y;
        reg {};
        cnt = n;
        while (i < cnt) {{
{body}            i = i + 1;
        }}
    }}",
        regs.join(", ")
    )
}

/// The workload filtering three samples.
pub fn workload() -> Workload {
    Workload {
        name: "ar_lattice",
        source: source(),
        inputs: vec![("x".into(), vec![3, -1, 2]), ("n".into(), vec![3])],
        max_steps: 20_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_output_per_sample() {
        let out = workload().expected();
        assert_eq!(out["y"].len(), 3);
    }

    #[test]
    fn op_mix_matches_benchmark() {
        // 2 muls/adds per stage + 4 output muls, per sample.
        assert_eq!(MULS, 16);
        assert_eq!(ADDS, 12);
        let p = workload().program();
        // Sanity: it parses and checks.
        assert_eq!(p.name, "ar_lattice");
    }
}
