//! A 16-tap FIR filter workload.
//!
//! `y[n] = Σ_{i=0..15} c_i · x[n−i]` with a software delay line: one sample
//! is read per iteration, multiplied against the coefficient bank, and the
//! delay registers shift. 16 multiplications and 15 additions per sample —
//! a wide, shallow DFG that parallelises well (the counterpoint to the
//! deep diffeq recurrence).

use crate::workload::Workload;
use std::fmt::Write;

/// Number of taps.
pub const TAPS: usize = 16;

/// The coefficient bank.
pub fn coefficients() -> [i64; TAPS] {
    [1, -2, 3, -1, 4, -3, 2, -4, 4, -2, 3, -4, 1, -3, 2, -1]
}

/// Source text.
pub fn source() -> String {
    let coeffs = coefficients();
    let mut sum = String::from("c_acc");
    let mut body = String::new();
    let _ = writeln!(body, "            s = x;");
    let _ = writeln!(body, "            c_acc = {} * s;", coeffs[0]);
    for (i, c) in coeffs.iter().enumerate().skip(1) {
        let _ = writeln!(body, "            p{i} = {c} * d{};", i - 1);
    }
    for i in 1..TAPS {
        let next = format!("a{i}");
        let _ = writeln!(body, "            {next} = {sum} + p{i};");
        sum = next;
    }
    let _ = writeln!(body, "            y = {sum};");
    // Shift the delay line (oldest first).
    for i in (1..TAPS - 1).rev() {
        let _ = writeln!(body, "            d{i} = d{};", i - 1);
    }
    let _ = writeln!(body, "            d0 = s;");

    let regs: Vec<String> = (0..TAPS - 1)
        .map(|i| format!("d{i} = 0"))
        .chain((1..TAPS).map(|i| format!("p{i}")))
        .chain((1..TAPS).map(|i| format!("a{i}")))
        .chain(["s".into(), "c_acc".into(), "i = 0".into(), "cnt".into()])
        .collect();

    format!(
        "design fir16 {{
        in x, n;
        out y;
        reg {};
        cnt = n;
        while (i < cnt) {{
{body}            i = i + 1;
        }}
    }}",
        regs.join(", ")
    )
}

/// The workload filtering six samples.
pub fn workload() -> Workload {
    Workload {
        name: "fir16",
        source: source(),
        inputs: vec![
            ("x".into(), vec![10, -5, 3, 7, 0, 2]),
            ("n".into(), vec![6]),
        ],
        max_steps: 60_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain-Rust FIR used to cross-check the interpreter reference.
    fn rust_fir(samples: &[i64]) -> Vec<i64> {
        let c = coefficients();
        let mut delay = [0i64; TAPS - 1];
        let mut out = Vec::new();
        for &s in samples {
            let mut acc = c[0] * s;
            for i in 1..TAPS {
                acc += c[i] * delay[i - 1];
            }
            out.push(acc);
            for i in (1..TAPS - 1).rev() {
                delay[i] = delay[i - 1];
            }
            delay[0] = s;
        }
        out
    }

    #[test]
    fn reference_matches_plain_rust() {
        let w = workload();
        let out = w.expected();
        let samples = &w.inputs[0].1;
        assert_eq!(out["y"], rust_fir(samples));
    }

    #[test]
    fn first_sample_is_c0_scaled() {
        let w = workload();
        let out = w.expected();
        assert_eq!(out["y"][0], coefficients()[0] * w.inputs[0].1[0]);
    }
}
