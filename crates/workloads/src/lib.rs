//! # etpn-workloads — benchmark designs and workload generators
//!
//! The standard high-level-synthesis benchmarks of the paper's era as
//! behavioural programs — [`diffeq`] (the HAL differential-equation
//! solver), [`ewf`] (fifth-order elliptic wave filter), [`fir`] (16-tap
//! FIR), [`gcd`], [`ar_lattice`], [`iir`] (biquad cascade), [`alphabeta`]
//! (fixed-gain Kalman tracker), [`isqrt`] (Newton square root) — plus seeded [`random`] generators for the
//! scaling experiments.
//!
//! [`interp`] provides a reference interpreter for the behavioural
//! language, used as an independent oracle: for every workload the ETPN
//! simulation of the compiled design must reproduce the interpreter's
//! outputs exactly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alphabeta;
pub mod ar_lattice;
pub mod catalog;
pub mod diffeq;
pub mod ewf;
pub mod fir;
pub mod gcd;
pub mod iir;
pub mod interp;
pub mod isqrt;
pub mod random;
pub mod workload;

pub use catalog::{by_name, catalog};
pub use interp::{interpret, InterpError};
pub use random::{random_design, random_net, random_program, ProgramShape};
pub use workload::Workload;
