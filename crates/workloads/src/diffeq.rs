//! The HAL differential-equation solver (Paulin & Knight), the canonical
//! high-level-synthesis benchmark of the paper's era.
//!
//! Solves `y'' + 3xy' + 3y = 0` by forward Euler over integers:
//!
//! ```text
//! while (x < a) {
//!     x1 = x + dx;
//!     u1 = u − 3·x·u·dx − 3·y·dx;
//!     y1 = y + u·dx;
//!     x = x1; u = u1; y = y1;
//! }
//! ```
//!
//! The loop body has 6 multiplications, 2 subtractions and 2 additions plus
//! the loop-bound comparison — the exact operation mix used in every
//! scheduling study built on this benchmark.

use crate::workload::Workload;

/// Source text of the solver.
pub fn source() -> String {
    "design diffeq {
        in xin, yin, uin, dxin, ain;
        out xout, yout, uout;
        reg x, y, u, dx, a, x1, u1, y1;
        x = xin;
        y = yin;
        u = uin;
        dx = dxin;
        a = ain;
        while (x < a) {
            x1 = x + dx;
            u1 = u - (3 * x) * (u * dx) - (3 * y) * dx;
            y1 = y + u * dx;
            x = x1;
            u = u1;
            y = y1;
        }
        xout = x;
        yout = y;
        uout = u;
    }"
    .to_string()
}

/// The workload with the standard small-integer input set.
pub fn workload() -> Workload {
    Workload {
        name: "diffeq",
        source: source(),
        inputs: vec![
            ("xin".into(), vec![0]),
            ("yin".into(), vec![1]),
            ("uin".into(), vec![1]),
            ("dxin".into(), vec![1]),
            ("ain".into(), vec![3]),
        ],
        max_steps: 2_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_outputs() {
        let w = workload();
        let out = w.expected();
        // Forward-Euler over integers, dx = 1, three iterations (x: 0→3).
        assert_eq!(out["xout"], vec![3]);
        assert_eq!(out["yout"], vec![-2]);
        assert_eq!(out["uout"], vec![10]);
    }

    #[test]
    fn op_mix() {
        let p = workload().program();
        assert_eq!(p.assignment_count(), 14);
        assert_eq!(p.inputs.len(), 5);
        assert_eq!(p.outputs.len(), 3);
    }
}
