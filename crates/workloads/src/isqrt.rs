//! Integer square root by Newton's method — the classic "SQRT"
//! control-flow benchmark.
//!
//! `y ← (y + a/y) / 2` iterated from `y₀ = a/2 + 1` (which upper-bounds
//! `√a` for every `a ≥ 0`, so the Newton iteration descends monotonically
//! and the divisor never vanishes) until `y·y ≤ a`. A data-dependent trip
//! count with a division *inside* the recurrence: together with GCD this
//! anchors the control-dominated end of the catalogue.

use crate::workload::Workload;

/// Source text.
pub fn source() -> String {
    "design isqrt {
        in a;
        out root;
        reg x, y;
        x = a;
        y = x / 2 + 1;
        while (y * y > x) {
            y = (y + x / y) / 2;
        }
        root = y;
    }"
    .to_string()
}

/// The workload computing `isqrt(170)` = 13.
pub fn workload() -> Workload {
    Workload {
        name: "isqrt",
        source: source(),
        inputs: vec![("a".into(), vec![170])],
        max_steps: 5_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_outputs() {
        assert_eq!(workload().expected()["root"], vec![13]);
    }

    #[test]
    fn exact_and_edge_cases() {
        for (a, want) in [(0, 0), (1, 1), (4, 2), (15, 3), (16, 4), (10_000, 100)] {
            let mut w = workload();
            w.inputs = vec![("a".into(), vec![a])];
            assert_eq!(w.expected()["root"], vec![want], "isqrt({a})");
        }
    }
}
