//! The common workload container.

use etpn_lang::Program;
use etpn_sim::ScriptedEnv;
use std::collections::HashMap;

/// A named benchmark: source text plus a representative input set.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name (`diffeq`, `ewf`, …).
    pub name: &'static str,
    /// Behavioural source text.
    pub source: String,
    /// Representative input streams.
    pub inputs: Vec<(String, Vec<i64>)>,
    /// Simulation step budget adequate for the representative inputs.
    pub max_steps: u64,
}

impl Workload {
    /// Parse (and check) the source.
    pub fn program(&self) -> Program {
        etpn_lang::parse_and_check(&self.source)
            .unwrap_or_else(|e| panic!("workload {}: {e}", self.name))
    }

    /// The representative environment as a [`ScriptedEnv`].
    pub fn env(&self) -> ScriptedEnv {
        let mut env = ScriptedEnv::new();
        for (name, values) in &self.inputs {
            env = env.with_stream(name, values.iter().copied());
        }
        env
    }

    /// Reference outputs computed by the independent AST interpreter.
    pub fn expected(&self) -> HashMap<String, Vec<i64>> {
        crate::interp::interpret(&self.program(), &self.inputs)
            .unwrap_or_else(|e| panic!("workload {} reference run: {e}", self.name))
    }
}
