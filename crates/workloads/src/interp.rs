//! A reference interpreter for the behavioural language.
//!
//! Executes a [`Program`] directly over the AST with the same value
//! semantics as the data path (wrapping two's-complement `i64`, division by
//! zero undefined) — **independently of the ETPN machinery**. The workloads
//! use it as a second, independent semantics: for every benchmark, the
//! compiled design simulated on the ETPN engine must produce exactly the
//! interpreter's outputs (cross-validation of compiler + simulator).
//!
//! Input-stream consumption mirrors the model: each statement (or condition
//! evaluation) that reads an input consumes one stream value per evaluated
//! occurrence set — an input read twice within one statement sees the same
//! value, consecutive statements see consecutive values.

use etpn_lang::{BinOp, Expr, Program, Stmt, UnOp};
use std::collections::HashMap;

/// Interpreter failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// An undefined value (uninitialised register, exhausted stream,
    /// division by zero) reached an operation.
    Undefined(String),
    /// The step budget was exhausted (non-terminating loop).
    StepLimit,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Undefined(n) => write!(f, "undefined value in `{n}`"),
            InterpError::StepLimit => write!(f, "interpreter step limit exceeded"),
        }
    }
}

/// The interpreter state and result.
pub struct Interp<'p> {
    prog: &'p Program,
    regs: HashMap<String, Option<i64>>,
    streams: HashMap<String, (Vec<i64>, usize)>,
    outputs: HashMap<String, Vec<i64>>,
    budget: u64,
}

impl<'p> Interp<'p> {
    /// Create an interpreter over `prog` with named input streams.
    pub fn new(prog: &'p Program, inputs: &[(String, Vec<i64>)]) -> Self {
        let mut regs = HashMap::new();
        for r in &prog.regs {
            regs.insert(r.name.clone(), r.init);
        }
        let streams = inputs
            .iter()
            .map(|(n, v)| (n.clone(), (v.clone(), 0usize)))
            .collect();
        let outputs = prog
            .outputs
            .iter()
            .map(|n| (n.clone(), Vec::new()))
            .collect();
        Self {
            prog,
            regs,
            streams,
            outputs,
            budget: 1_000_000,
        }
    }

    /// Run to completion; returns output name → emitted value sequence.
    pub fn run(mut self) -> Result<HashMap<String, Vec<i64>>, InterpError> {
        let body = &self.prog.body;
        self.exec_block(body)?;
        Ok(self.outputs)
    }

    fn tick(&mut self) -> Result<(), InterpError> {
        if self.budget == 0 {
            return Err(InterpError::StepLimit);
        }
        self.budget -= 1;
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<(), InterpError> {
        for s in stmts {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<(), InterpError> {
        self.tick()?;
        match s {
            Stmt::Assign { target, expr, .. } => {
                let (v, reads) = self.eval(expr)?;
                self.consume(&reads);
                if self.outputs.contains_key(target) {
                    self.outputs.get_mut(target).expect("output").push(v);
                } else {
                    self.regs.insert(target.clone(), Some(v));
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let (c, reads) = self.eval(cond)?;
                self.consume(&reads);
                if c != 0 {
                    self.exec_block(then_body)
                } else {
                    self.exec_block(else_body)
                }
            }
            Stmt::While { cond, body, .. } => loop {
                self.tick()?;
                let (c, reads) = self.eval(cond)?;
                self.consume(&reads);
                if c == 0 {
                    return Ok(());
                }
                self.exec_block(body)?;
            },
            Stmt::Par { branches, .. } => {
                // Branches write disjoint registers (checked by the
                // front-end); executing them in order is one legal
                // interleaving.
                for b in branches {
                    self.exec_block(b)?;
                }
                Ok(())
            }
        }
    }

    /// Evaluate an expression; returns the value and the set of input names
    /// read (each to be consumed once by the caller).
    fn eval(&self, e: &Expr) -> Result<(i64, Vec<String>), InterpError> {
        let mut reads = Vec::new();
        let v = self.eval_inner(e, &mut reads)?;
        Ok((v, reads))
    }

    fn eval_inner(&self, e: &Expr, reads: &mut Vec<String>) -> Result<i64, InterpError> {
        Ok(match e {
            Expr::Const(v) => *v,
            Expr::Var(n, _) => {
                if let Some((stream, pos)) = self.streams.get(n) {
                    if !reads.contains(n) {
                        reads.push(n.clone());
                    }
                    *stream
                        .get(*pos)
                        .ok_or_else(|| InterpError::Undefined(format!("input {n}")))?
                } else if self.prog.inputs.contains(n) {
                    return Err(InterpError::Undefined(format!("input {n} (no stream)")));
                } else {
                    self.regs
                        .get(n)
                        .copied()
                        .flatten()
                        .ok_or_else(|| InterpError::Undefined(format!("register {n}")))?
                }
            }
            Expr::Unary(op, inner) => {
                let a = self.eval_inner(inner, reads)?;
                match op {
                    UnOp::Neg => a.wrapping_neg(),
                    UnOp::Not => !a,
                    UnOp::LNot => i64::from(a == 0),
                }
            }
            Expr::Binary(op, x, y) => {
                let a = self.eval_inner(x, reads)?;
                let b = self.eval_inner(y, reads)?;
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(InterpError::Undefined("division by zero".into()));
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(InterpError::Undefined("remainder by zero".into()));
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                    BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Ge => i64::from(a >= b),
                }
            }
            Expr::Ternary(c, a, b) => {
                let cv = self.eval_inner(c, reads)?;
                // Both branches are data-path hardware: evaluate both (they
                // must be defined), select by condition — matching the Mux.
                let av = self.eval_inner(a, reads)?;
                let bv = self.eval_inner(b, reads)?;
                if cv != 0 {
                    av
                } else {
                    bv
                }
            }
        })
    }

    fn consume(&mut self, reads: &[String]) {
        for n in reads {
            if let Some((_, pos)) = self.streams.get_mut(n) {
                *pos += 1;
            }
        }
    }
}

/// Convenience: interpret `prog` with the given streams.
pub fn interpret(
    prog: &Program,
    inputs: &[(String, Vec<i64>)],
) -> Result<HashMap<String, Vec<i64>>, InterpError> {
    Interp::new(prog, inputs).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpn_lang::parse;

    fn run(src: &str, inputs: &[(&str, Vec<i64>)]) -> HashMap<String, Vec<i64>> {
        let prog = parse(src).unwrap();
        let inputs: Vec<(String, Vec<i64>)> = inputs
            .iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect();
        interpret(&prog, &inputs).unwrap()
    }

    #[test]
    fn straight_line() {
        let out = run(
            "design t { in a, b; out y; reg r; r = a + b; y = r * 2; }",
            &[("a", vec![3]), ("b", vec![4])],
        );
        assert_eq!(out["y"], vec![14]);
    }

    #[test]
    fn gcd_loop() {
        let src = "design gcd { in a, b; out g; reg x, y;
            x = a; y = b;
            while (x != y) { if (x > y) { x = x - y; } else { y = y - x; } }
            g = x; }";
        let out = run(src, &[("a", vec![48]), ("b", vec![36])]);
        assert_eq!(out["g"], vec![12]);
    }

    #[test]
    fn stream_consumption_per_statement() {
        let src = "design t { in x; out y; reg r;
            r = x + x;  // one consume, same value twice
            y = r;
            r = x;      // next value
            y = r; }";
        let out = run(src, &[("x", vec![5, 9])]);
        assert_eq!(out["y"], vec![10, 9]);
    }

    #[test]
    fn uninitialised_register_is_undefined() {
        let prog = parse("design t { out y; reg r; y = r; }").unwrap();
        assert!(matches!(
            interpret(&prog, &[]),
            Err(InterpError::Undefined(_))
        ));
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let prog = parse("design t { reg r = 1; while (r) { r = 1; } }").unwrap();
        assert_eq!(interpret(&prog, &[]), Err(InterpError::StepLimit));
    }

    #[test]
    fn par_executes_all_branches() {
        let out = run(
            "design t { in a; out y, z; reg r1, r2;
                r1 = a;
                par { { r1 = r1 + 1; } { r2 = 10; } }
                y = r1; z = r2; }",
            &[("a", vec![1])],
        );
        assert_eq!(out["y"], vec![2]);
        assert_eq!(out["z"], vec![10]);
    }
}
