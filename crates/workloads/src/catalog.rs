//! The benchmark catalogue: every standard workload in one list.

use crate::workload::Workload;

/// All standard benchmarks, in canonical order.
pub fn catalog() -> Vec<Workload> {
    vec![
        crate::diffeq::workload(),
        crate::ewf::workload(),
        crate::fir::workload(),
        crate::gcd::workload(),
        crate::ar_lattice::workload(),
        crate::iir::workload(),
        crate::alphabeta::workload(),
        crate::isqrt::workload(),
    ]
}

/// Look up a benchmark by name.
pub fn by_name(name: &str) -> Option<Workload> {
    catalog().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete_and_valid() {
        let all = catalog();
        assert_eq!(all.len(), 8);
        for w in &all {
            let p = w.program(); // parses and checks
            assert!(!p.outputs.is_empty(), "{} has outputs", w.name);
            let out = w.expected(); // reference interpreter runs
            assert!(
                out.values().any(|v| !v.is_empty()),
                "{} produces output",
                w.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("gcd").is_some());
        assert!(by_name("diffeq").is_some());
        assert!(by_name("nope").is_none());
    }
}
