//! Euclid's GCD — the canonical control-dominated workload.
//!
//! Unlike the filters, GCD is all branching: a data-dependent `while` with
//! an `if`/`else` inside. It exercises the guard machinery (Defs. 2.2,
//! 3.1(4)) and the conflict-freedom checker rather than the schedulers.

use crate::workload::Workload;

/// Source text.
pub fn source() -> String {
    "design gcd {
        in a, b;
        out g;
        reg x, y;
        x = a;
        y = b;
        while (x != y) {
            if (x > y) {
                x = x - y;
            } else {
                y = y - x;
            }
        }
        g = x;
    }"
    .to_string()
}

/// The workload computing `gcd(3528, 3780) = 252`.
pub fn workload() -> Workload {
    Workload {
        name: "gcd",
        source: source(),
        inputs: vec![("a".into(), vec![3528]), ("b".into(), vec![3780])],
        max_steps: 5_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_outputs() {
        let out = workload().expected();
        assert_eq!(out["g"], vec![252]);
    }

    #[test]
    fn coprime_inputs() {
        let mut w = workload();
        w.inputs = vec![("a".into(), vec![17]), ("b".into(), vec![29])];
        assert_eq!(w.expected()["g"], vec![1]);
    }
}
