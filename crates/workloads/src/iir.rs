//! A two-section IIR biquad cascade (direct form I).
//!
//! Each section computes
//! `y = b0·x + b1·x1 + b2·x2 − a1·y1 − a2·y2` over its own delay
//! registers — 5 multiplications and 4 additions per section per sample,
//! with a *recurrence* through the section outputs: unlike the FIR, the
//! feedback path bounds parallelisation across samples, making this the
//! interesting middle point between the wide FIR and the serial GCD.

use crate::workload::Workload;
use std::fmt::Write;

/// Sections in the cascade.
pub const SECTIONS: usize = 2;

/// Integer coefficient sets `(b0, b1, b2, a1, a2)` per section.
pub fn coefficients() -> [(i64, i64, i64, i64, i64); SECTIONS] {
    [(2, 3, 1, -1, 1), (1, -2, 2, 1, -1)]
}

/// Source text.
pub fn source() -> String {
    let mut body = String::new();
    let _ = writeln!(body, "            s0in = x;");
    for (k, (b0, b1, b2, a1, a2)) in coefficients().iter().enumerate() {
        let x = if k == 0 {
            "s0in".to_string()
        } else {
            format!("sec{}out", k - 1)
        };
        let _ = writeln!(body, "            t{k}a = {b0} * {x} + {b1} * x1_{k};");
        let _ = writeln!(body, "            t{k}b = {b2} * x2_{k} - {a1} * y1_{k};");
        let _ = writeln!(
            body,
            "            sec{k}out = t{k}a + t{k}b - {a2} * y2_{k};"
        );
        let _ = writeln!(body, "            x2_{k} = x1_{k};");
        let _ = writeln!(body, "            x1_{k} = {x};");
        let _ = writeln!(body, "            y2_{k} = y1_{k};");
        let _ = writeln!(body, "            y1_{k} = sec{k}out;");
    }
    let _ = writeln!(body, "            y = sec{}out;", SECTIONS - 1);

    let regs: Vec<String> = (0..SECTIONS)
        .flat_map(|k| {
            [
                format!("x1_{k} = 0"),
                format!("x2_{k} = 0"),
                format!("y1_{k} = 0"),
                format!("y2_{k} = 0"),
                format!("t{k}a"),
                format!("t{k}b"),
                format!("sec{k}out"),
            ]
        })
        .chain(["s0in".into(), "i = 0".into(), "cnt".into()])
        .collect();

    format!(
        "design iir {{
        in x, n;
        out y;
        reg {};
        cnt = n;
        while (i < cnt) {{
{body}            i = i + 1;
        }}
    }}",
        regs.join(", ")
    )
}

/// The workload filtering five samples.
pub fn workload() -> Workload {
    Workload {
        name: "iir",
        source: source(),
        inputs: vec![("x".into(), vec![8, -4, 2, 6, -1]), ("n".into(), vec![5])],
        max_steps: 40_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain-Rust cascade used to cross-check the interpreter reference.
    fn rust_iir(samples: &[i64]) -> Vec<i64> {
        let coeffs = coefficients();
        let mut state = [[0i64; 4]; SECTIONS]; // x1, x2, y1, y2
        let mut out = Vec::new();
        for &s in samples {
            let mut x = s;
            for (k, &(b0, b1, b2, a1, a2)) in coeffs.iter().enumerate() {
                let [x1, x2, y1, y2] = state[k];
                let y = b0 * x + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2;
                state[k] = [x, x1, y, y1];
                x = y;
            }
            out.push(x);
        }
        out
    }

    #[test]
    fn reference_matches_plain_rust() {
        let w = workload();
        let out = w.expected();
        assert_eq!(out["y"], rust_iir(&w.inputs[0].1));
    }

    #[test]
    fn feedback_is_active() {
        // With feedback coefficients, a single impulse rings.
        let mut w = workload();
        w.inputs = vec![("x".into(), vec![1, 0, 0, 0]), ("n".into(), vec![4])];
        let y = w.expected()["y"].clone();
        assert!(y[1..].iter().any(|&v| v != 0), "{y:?}");
    }
}
