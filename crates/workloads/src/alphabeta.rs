//! An α–β tracking filter (the fixed-gain member of the Kalman family).
//!
//! Per measurement: predict `xp = xe + ve`, form the residual
//! `r = z − xp`, and correct the position/velocity estimates with constant
//! gains implemented as multiply-divide pairs. It is the only catalogue
//! workload exercising the **divider** (the slowest, largest module in the
//! library), and it emits *two* output streams per iteration — a stress
//! test for the event machinery (two external writes per loop pass).

use crate::workload::Workload;

/// Source text.
pub fn source() -> String {
    "design alphabeta {
        in z, n;
        out pos, vel;
        reg xe = 0, ve = 0, xp, r, i = 0, cnt;
        cnt = n;
        while (i < cnt) {
            xp = xe + ve;
            r = z - xp;
            xe = xp + (3 * r) / 4;
            ve = ve + r / 2;
            pos = xe;
            vel = ve;
            i = i + 1;
        }
    }"
    .to_string()
}

/// The workload tracking six noisy measurements of a ramp.
pub fn workload() -> Workload {
    Workload {
        name: "alphabeta",
        source: source(),
        inputs: vec![
            ("z".into(), vec![10, 22, 29, 42, 48, 61]),
            ("n".into(), vec![6]),
        ],
        max_steps: 40_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain-Rust mirror (truncating division, like `Op::Div`).
    fn rust_ab(zs: &[i64]) -> (Vec<i64>, Vec<i64>) {
        let (mut xe, mut ve) = (0i64, 0i64);
        let (mut pos, mut vel) = (Vec::new(), Vec::new());
        for &z in zs {
            let xp = xe + ve;
            let r = z - xp;
            xe = xp + (3 * r) / 4;
            ve += r / 2;
            pos.push(xe);
            vel.push(ve);
        }
        (pos, vel)
    }

    #[test]
    fn reference_matches_plain_rust() {
        let w = workload();
        let out = w.expected();
        let (pos, vel) = rust_ab(&w.inputs[0].1);
        assert_eq!(out["pos"], pos);
        assert_eq!(out["vel"], vel);
    }

    #[test]
    fn tracks_a_ramp() {
        let w = workload();
        let out = w.expected();
        // The velocity estimate should settle near the true slope (~10).
        let v_last = *out["vel"].last().unwrap();
        assert!((5..=15).contains(&v_last), "vel = {:?}", out["vel"]);
    }
}
