//! Seeded random workload generators for the scaling experiments (E7, E9).
//!
//! * [`random_program`] — layered straight-line programs: each layer writes
//!   fresh registers from values of earlier layers; optional `par` blocks
//!   introduce genuine control concurrency;
//! * [`random_net`] — random ETPN control skeletons built directly (serial
//!   chains with nested fork/join diamonds over a register file), for
//!   analysis benchmarks that need nets far larger than realistic programs.

use etpn_core::{ArcId, Etpn, EtpnBuilder, PlaceId};
use etpn_lang::Program;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Parameters for [`random_program`].
#[derive(Clone, Copy, Debug)]
pub struct ProgramShape {
    /// Number of assignment statements.
    pub assignments: usize,
    /// Number of registers to cycle through.
    pub registers: usize,
    /// Probability (percent) that a group of statements forms a `par` block.
    pub par_percent: u32,
}

impl Default for ProgramShape {
    fn default() -> Self {
        Self {
            assignments: 32,
            registers: 8,
            par_percent: 25,
        }
    }
}

/// Generate a random program (always parses and checks).
pub fn random_program(seed: u64, shape: ProgramShape) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nregs = shape.registers.max(4); // ≥ 4 so par groups (≤ 3) always have readable registers
    let mut body = String::new();
    let ops = ["+", "-", "*", "&", "|", "^"];
    let mut emitted = 0usize;
    let mut next_reg = 0usize;
    while emitted < shape.assignments {
        let group =
            if rng.gen_range(0..100u32) < shape.par_percent && emitted + 2 <= shape.assignments {
                rng.gen_range(2..=3.min(shape.assignments - emitted))
            } else {
                1
            };
        // Target registers: round-robin guarantees par branches write
        // disjoint registers.
        let targets: Vec<usize> = (0..group).map(|j| (next_reg + j) % nregs).collect();
        next_reg += group;
        // Reads must avoid the group's targets: a parallel branch reading a
        // register another branch writes would race (the states would be
        // ◇-dependent, and the schedule-dependent value would break the
        // interpreter/simulator cross-check).
        let readable: Vec<usize> = (0..nregs).filter(|r| !targets.contains(r)).collect();
        let mut stmts = Vec::new();
        for &tgt in &targets {
            let a = readable[rng.gen_range(0..readable.len())];
            let b = readable[rng.gen_range(0..readable.len())];
            let op = ops[rng.gen_range(0..ops.len())];
            stmts.push(format!("r{tgt} = r{a} {op} r{b};"));
            emitted += 1;
        }
        if stmts.len() > 1 {
            let branches: Vec<String> = stmts.iter().map(|s| format!("{{ {s} }}")).collect();
            let _ = writeln!(body, "        par {{ {} }}", branches.join(" "));
        } else {
            let _ = writeln!(body, "        {}", stmts[0]);
        }
    }
    let regs: Vec<String> = (0..nregs)
        .map(|i| format!("r{i} = {}", i as i64 + 1))
        .collect();
    let src = format!(
        "design rnd {{
        in x;
        out y;
        reg {};
        r0 = x;
{body}        y = r0;
    }}",
        regs.join(", ")
    );
    etpn_lang::parse_and_check(&src).expect("generated program is valid")
}

/// Generate a random ETPN control skeleton with `n_places` control states.
///
/// The net is a serial chain interspersed with fork/join diamonds; every
/// state loads one register from a shared constant pool, so the design
/// passes the properly-designed checks.
pub fn random_net(seed: u64, n_places: usize) -> Etpn {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = EtpnBuilder::new();
    let k = b.constant(1, "k1");
    // One register per state keeps associated sets disjoint.
    let mk_state = |b: &mut EtpnBuilder, i: usize| -> (PlaceId, ArcId) {
        let r = b.register(&format!("r{i}"));
        let a = b.connect(b.out_port(k, 0), b.in_port(r, 0));
        let s = b.place(&format!("s{i}"));
        b.control(s, [a]);
        (s, a)
    };
    let (first, _) = mk_state(&mut b, 0);
    b.mark(first);
    let mut current = first;
    let mut made = 1usize;
    let mut tcount = 0usize;
    while made < n_places {
        let remaining = n_places - made;
        if remaining >= 3 && rng.gen_bool(0.3) {
            // Diamond: fork into two states, then join into one.
            let (sa, _) = mk_state(&mut b, made);
            let (sb, _) = mk_state(&mut b, made + 1);
            let (sj, _) = mk_state(&mut b, made + 2);
            made += 3;
            let tf = b.transition(&format!("t{tcount}"));
            tcount += 1;
            b.flow_st(current, tf);
            b.flow_ts(tf, sa);
            b.flow_ts(tf, sb);
            let tj = b.transition(&format!("t{tcount}"));
            tcount += 1;
            b.flow_st(sa, tj);
            b.flow_st(sb, tj);
            b.flow_ts(tj, sj);
            current = sj;
        } else {
            let (s, _) = mk_state(&mut b, made);
            made += 1;
            let t = b.transition(&format!("t{tcount}"));
            tcount += 1;
            b.flow_st(current, t);
            b.flow_ts(t, s);
            current = s;
        }
    }
    let t_end = b.transition("t_end");
    b.flow_st(current, t_end);
    b.finish().expect("generated net is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpn_analysis::proper::check_properly_designed;

    #[test]
    fn random_program_is_deterministic_per_seed() {
        let p1 = random_program(7, ProgramShape::default());
        let p2 = random_program(7, ProgramShape::default());
        assert_eq!(p1, p2);
        let p3 = random_program(8, ProgramShape::default());
        assert_ne!(p1, p3);
    }

    #[test]
    fn random_program_has_requested_size() {
        let shape = ProgramShape {
            assignments: 50,
            registers: 6,
            par_percent: 30,
        };
        let p = random_program(1, shape);
        // +2 for the input load and output emit.
        assert_eq!(p.assignment_count(), 52);
    }

    #[test]
    fn random_net_sizes_and_properness() {
        for n in [4, 17, 64] {
            let g = random_net(3, n);
            assert_eq!(g.ctl.places().len(), n, "n={n}");
            let rep = check_properly_designed(&g);
            assert!(rep.is_proper(), "n={n}: {}", rep.summary());
        }
    }

    #[test]
    fn random_net_interpretable_by_sim() {
        let g = random_net(5, 12);
        let trace = etpn_sim::Simulator::new(&g, etpn_sim::ScriptedEnv::new())
            .run(100)
            .unwrap();
        assert_eq!(trace.termination, etpn_sim::Termination::Terminated);
    }
}
