//! Seeded random workload generators for the scaling experiments (E7, E9).
//!
//! * [`random_program`] — layered straight-line programs: each layer writes
//!   fresh registers from values of earlier layers; optional `par` blocks
//!   introduce genuine control concurrency;
//! * [`random_net`] — random ETPN control skeletons built directly (serial
//!   chains with nested fork/join diamonds over a register file), for
//!   analysis benchmarks that need nets far larger than realistic programs;
//! * [`random_design`] — small full designs (data-path expression trees,
//!   guarded branches, an input stream and an external output) for the
//!   property-based backend cross-checks: shrinking-friendly in the sense
//!   that `n_places`/`n_regs` bound the design directly, so a failing case
//!   replays from three integers.

use etpn_core::{ArcId, Etpn, EtpnBuilder, Op, PlaceId, VertexId};
use etpn_lang::Program;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Parameters for [`random_program`].
#[derive(Clone, Copy, Debug)]
pub struct ProgramShape {
    /// Number of assignment statements.
    pub assignments: usize,
    /// Number of registers to cycle through.
    pub registers: usize,
    /// Probability (percent) that a group of statements forms a `par` block.
    pub par_percent: u32,
}

impl Default for ProgramShape {
    fn default() -> Self {
        Self {
            assignments: 32,
            registers: 8,
            par_percent: 25,
        }
    }
}

/// Generate a random program (always parses and checks).
pub fn random_program(seed: u64, shape: ProgramShape) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nregs = shape.registers.max(4); // ≥ 4 so par groups (≤ 3) always have readable registers
    let mut body = String::new();
    let ops = ["+", "-", "*", "&", "|", "^"];
    let mut emitted = 0usize;
    let mut next_reg = 0usize;
    while emitted < shape.assignments {
        let group =
            if rng.gen_range(0..100u32) < shape.par_percent && emitted + 2 <= shape.assignments {
                rng.gen_range(2..=3.min(shape.assignments - emitted))
            } else {
                1
            };
        // Target registers: round-robin guarantees par branches write
        // disjoint registers.
        let targets: Vec<usize> = (0..group).map(|j| (next_reg + j) % nregs).collect();
        next_reg += group;
        // Reads must avoid the group's targets: a parallel branch reading a
        // register another branch writes would race (the states would be
        // ◇-dependent, and the schedule-dependent value would break the
        // interpreter/simulator cross-check).
        let readable: Vec<usize> = (0..nregs).filter(|r| !targets.contains(r)).collect();
        let mut stmts = Vec::new();
        for &tgt in &targets {
            let a = readable[rng.gen_range(0..readable.len())];
            let b = readable[rng.gen_range(0..readable.len())];
            let op = ops[rng.gen_range(0..ops.len())];
            stmts.push(format!("r{tgt} = r{a} {op} r{b};"));
            emitted += 1;
        }
        if stmts.len() > 1 {
            let branches: Vec<String> = stmts.iter().map(|s| format!("{{ {s} }}")).collect();
            let _ = writeln!(body, "        par {{ {} }}", branches.join(" "));
        } else {
            let _ = writeln!(body, "        {}", stmts[0]);
        }
    }
    let regs: Vec<String> = (0..nregs)
        .map(|i| format!("r{i} = {}", i as i64 + 1))
        .collect();
    let src = format!(
        "design rnd {{
        in x;
        out y;
        reg {};
        r0 = x;
{body}        y = r0;
    }}",
        regs.join(", ")
    );
    etpn_lang::parse_and_check(&src).expect("generated program is valid")
}

/// Generate a random ETPN control skeleton with `n_places` control states.
///
/// The net is a serial chain interspersed with fork/join diamonds; every
/// state loads one register from a shared constant pool, so the design
/// passes the properly-designed checks.
pub fn random_net(seed: u64, n_places: usize) -> Etpn {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = EtpnBuilder::new();
    let k = b.constant(1, "k1");
    // One register per state keeps associated sets disjoint.
    let mk_state = |b: &mut EtpnBuilder, i: usize| -> (PlaceId, ArcId) {
        let r = b.register(&format!("r{i}"));
        let a = b.connect(b.out_port(k, 0), b.in_port(r, 0));
        let s = b.place(&format!("s{i}"));
        b.control(s, [a]);
        (s, a)
    };
    let (first, _) = mk_state(&mut b, 0);
    b.mark(first);
    let mut current = first;
    let mut made = 1usize;
    let mut tcount = 0usize;
    while made < n_places {
        let remaining = n_places - made;
        if remaining >= 3 && rng.gen_bool(0.3) {
            // Diamond: fork into two states, then join into one.
            let (sa, _) = mk_state(&mut b, made);
            let (sb, _) = mk_state(&mut b, made + 1);
            let (sj, _) = mk_state(&mut b, made + 2);
            made += 3;
            let tf = b.transition(&format!("t{tcount}"));
            tcount += 1;
            b.flow_st(current, tf);
            b.flow_ts(tf, sa);
            b.flow_ts(tf, sb);
            let tj = b.transition(&format!("t{tcount}"));
            tcount += 1;
            b.flow_st(sa, tj);
            b.flow_st(sb, tj);
            b.flow_ts(tj, sj);
            current = sj;
        } else {
            let (s, _) = mk_state(&mut b, made);
            made += 1;
            let t = b.transition(&format!("t{tcount}"));
            tcount += 1;
            b.flow_st(current, t);
            b.flow_ts(t, s);
            current = s;
        }
    }
    let t_end = b.transition("t_end");
    b.flow_st(current, t_end);
    b.finish().expect("generated net is valid")
}

/// Generate a random small *full* design: expression trees over a register
/// file and an input stream, fork/join diamonds, occasional guarded
/// branches, and an external output — the workload of the backend
/// property suite (`tests/properties.rs`).
///
/// `n_places` is clamped to `2..=64` and `n_regs` to `1..=16`, so a
/// failing property case replays (and "shrinks") by re-running with the
/// three integers from the report. The construction is canonical (flows
/// grouped per transition at creation), which keeps the design stable
/// under compile∘decompile replay.
pub fn random_design(seed: u64, n_places: usize, n_regs: usize) -> Etpn {
    let n_places = n_places.clamp(2, 64);
    let n_regs = n_regs.clamp(1, 16);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = EtpnBuilder::new();
    let k0 = b.constant(1, "k0");
    let k1 = b.constant(rng.gen_range(2..10), "k1");
    let x = b.input("x");
    let y = b.output("y");
    let regs: Vec<VertexId> = (0..n_regs).map(|i| b.register(&format!("r{i}"))).collect();
    let comb_ops = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Min,
        Op::Max,
    ];

    // One state: a depth-≤2 expression tree over {consts, x, registers}
    // loading one target register; returns the place. `vcount` names the
    // operator vertices uniquely.
    let mut vcount = 0usize;
    let mut mk_state = |b: &mut EtpnBuilder, rng: &mut SmallRng, idx: usize, tgt: usize| {
        let mut arcs: Vec<ArcId> = Vec::new();
        let leaf = |b: &mut EtpnBuilder, rng: &mut SmallRng| match rng.gen_range(0..4u32) {
            0 => b.out_port(k0, 0),
            1 => b.out_port(k1, 0),
            2 => b.out_port(x, 0),
            _ => b.out_port(regs[rng.gen_range(0..n_regs)], 0),
        };
        let op = comb_ops[rng.gen_range(0..comb_ops.len())];
        let v1 = b.operator(op, 2, &format!("e{vcount}"));
        vcount += 1;
        let (l0, l1) = (leaf(b, rng), leaf(b, rng));
        arcs.push(b.connect(l0, b.in_port(v1, 0)));
        arcs.push(b.connect(l1, b.in_port(v1, 1)));
        let top = if rng.gen_bool(0.4) {
            let op2 = comb_ops[rng.gen_range(0..comb_ops.len())];
            let v2 = b.operator(op2, 2, &format!("e{vcount}"));
            vcount += 1;
            arcs.push(b.connect(b.out_port(v1, 0), b.in_port(v2, 0)));
            let l2 = leaf(b, rng);
            arcs.push(b.connect(l2, b.in_port(v2, 1)));
            v2
        } else {
            v1
        };
        arcs.push(b.connect(b.out_port(top, 0), b.in_port(regs[tgt], 0)));
        let s = b.place(&format!("s{idx}"));
        b.control(s, arcs);
        s
    };

    // Target registers round-robin on the state index, so the two
    // branches of a diamond always load disjoint registers (concurrently
    // open loads of one register would be an input conflict — a legal
    // outcome, but one that ends every run at step 0 and tests nothing).
    let first = mk_state(&mut b, &mut rng, 0, 0);
    b.mark(first);
    let mut current = first;
    let mut made = 1usize;
    let mut tcount = 0usize;
    while made < n_places - 1 {
        let remaining = (n_places - 1) - made;
        if remaining >= 3 && n_regs >= 2 && rng.gen_bool(0.3) {
            // Fork/join diamond with disjoint target registers.
            let ra = made % n_regs;
            let mut rb = (made + 1) % n_regs;
            if rb == ra {
                rb = (rb + 1) % n_regs;
            }
            let sa = mk_state(&mut b, &mut rng, made, ra);
            let sb = mk_state(&mut b, &mut rng, made + 1, rb);
            let sj = mk_state(&mut b, &mut rng, made + 2, (made + 2) % n_regs);
            made += 3;
            let tf = b.transition(&format!("t{tcount}"));
            tcount += 1;
            b.flow_st(current, tf);
            b.flow_ts(tf, sa);
            b.flow_ts(tf, sb);
            let tj = b.transition(&format!("t{tcount}"));
            tcount += 1;
            b.flow_st(sa, tj);
            b.flow_st(sb, tj);
            b.flow_ts(tj, sj);
            current = sj;
        } else {
            let s = mk_state(&mut b, &mut rng, made, made % n_regs);
            made += 1;
            let t = b.transition(&format!("t{tcount}"));
            tcount += 1;
            b.flow_st(current, t);
            b.flow_ts(t, s);
            if rng.gen_bool(0.25) {
                // Guard the step on a comparison of the *input stream*
                // against a constant: the stream advances every step, so a
                // waiting state eventually unblocks (a register compared
                // here would hold its value while the place waits and could
                // block forever). The comparison arcs are controlled by the
                // waiting place itself.
                let cmp = b.operator(
                    if rng.gen_bool(0.5) { Op::Ge } else { Op::Ne },
                    2,
                    &format!("g{tcount}"),
                );
                let a0 = b.connect(b.out_port(x, 0), b.in_port(cmp, 0));
                let a1 = b.connect(b.out_port(k0, 0), b.in_port(cmp, 1));
                b.control(current, [a0, a1]);
                b.guard(t, b.out_port(cmp, 0));
            }
            current = s;
        }
    }
    // Final state: emit a register to the external output.
    let emit = b.connect(b.out_port(regs[0], 0), b.in_port(y, 0));
    let s_out = b.place(&format!("s{made}"));
    b.control(s_out, [emit]);
    let t = b.transition(&format!("t{tcount}"));
    b.flow_st(current, t);
    b.flow_ts(t, s_out);
    let t_end = b.transition("t_end");
    b.flow_st(s_out, t_end);
    b.finish().expect("generated design is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpn_analysis::proper::check_properly_designed;

    #[test]
    fn random_program_is_deterministic_per_seed() {
        let p1 = random_program(7, ProgramShape::default());
        let p2 = random_program(7, ProgramShape::default());
        assert_eq!(p1, p2);
        let p3 = random_program(8, ProgramShape::default());
        assert_ne!(p1, p3);
    }

    #[test]
    fn random_program_has_requested_size() {
        let shape = ProgramShape {
            assignments: 50,
            registers: 6,
            par_percent: 30,
        };
        let p = random_program(1, shape);
        // +2 for the input load and output emit.
        assert_eq!(p.assignment_count(), 52);
    }

    #[test]
    fn random_net_sizes_and_properness() {
        for n in [4, 17, 64] {
            let g = random_net(3, n);
            assert_eq!(g.ctl.places().len(), n, "n={n}");
            let rep = check_properly_designed(&g);
            assert!(rep.is_proper(), "n={n}: {}", rep.summary());
        }
    }

    #[test]
    fn random_net_interpretable_by_sim() {
        let g = random_net(5, 12);
        let trace = etpn_sim::Simulator::new(&g, etpn_sim::ScriptedEnv::new())
            .run(100)
            .unwrap();
        assert_eq!(trace.termination, etpn_sim::Termination::Terminated);
    }

    #[test]
    fn random_design_is_deterministic_per_seed() {
        let g1 = random_design(11, 20, 4);
        let g2 = random_design(11, 20, 4);
        assert_eq!(g1.fingerprint(), g2.fingerprint());
        let g3 = random_design(12, 20, 4);
        assert_ne!(g1.fingerprint(), g3.fingerprint());
    }

    #[test]
    fn random_design_runs_to_termination_on_both_sizes() {
        for (seed, n, r) in [(1u64, 6, 2), (2, 24, 5), (3, 64, 16), (4, 2, 1)] {
            let g = random_design(seed, n, r);
            let env = etpn_sim::ScriptedEnv::new().with_stream("x", (0..500).collect::<Vec<_>>());
            let trace = etpn_sim::Simulator::new(&g, env).run(500).unwrap();
            assert_eq!(
                trace.termination,
                etpn_sim::Termination::Terminated,
                "seed={seed} n={n} r={r}"
            );
            assert!(
                !trace.events.is_empty(),
                "seed={seed}: the output register emit must be observed"
            );
        }
    }
}
