//! A fifth-order elliptic-wave-filter workload.
//!
//! The classic EWF benchmark is a straight-line ladder of **26 additions
//! and 8 constant multiplications** over 7 state variables. The published
//! netlist is not reproduced in the paper; we reconstruct a filter with the
//! same operation counts, the same number of state variables, and a
//! comparable dependence depth — which is what the scheduling and
//! resource-sharing experiments actually exercise (op mix and chain shape,
//! not the specific coefficients).
//!
//! The body is generated programmatically so the operation counts are
//! guaranteed: eight ladder sections each contribute `t = acc + sv_i`
//! (add), `m = c_i * t` (mul), `acc = m + t_prev` (add); the remaining ten
//! additions update the seven state variables and fold the output.

use crate::workload::Workload;
use std::fmt::Write;

/// Number of additions in the generated body.
pub const ADDS: usize = 26;
/// Number of multiplications in the generated body.
pub const MULS: usize = 8;

/// Source text of the filter, processing `n` input samples in a loop.
pub fn source() -> String {
    let coeffs: [i64; 8] = [3, -5, 7, -3, 2, -7, 5, -2];
    let mut body = String::new();
    // 8 sections: 2 adds + 1 mul each = 16 adds, 8 muls.
    let _ = writeln!(body, "            s = x;");
    let _ = writeln!(body, "            acc = s + sv1;"); // add 1 of section 0 uses sv1
    for (i, c) in coeffs.iter().enumerate() {
        let sv = i % 7 + 1;
        let _ = writeln!(body, "            t{i} = acc + sv{sv};");
        let _ = writeln!(body, "            m{i} = {c} * t{i};");
        if i + 1 < coeffs.len() {
            let _ = writeln!(body, "            acc = m{i} + t{i};");
        }
    }
    // So far: 1 + 8 (t) + 7 (acc) = 16 adds, 8 muls.
    // State updates: 7 adds.
    for i in 1..=7 {
        let j = (i + 2) % 8;
        let _ = writeln!(body, "            sv{i} = t{j} + m{};", i % 8);
    }
    // Output folding: 3 adds (16 + 7 + 3 = 26 total).
    let _ = writeln!(body, "            o1 = m7 + sv3;");
    let _ = writeln!(body, "            o2 = o1 + sv6;");
    let _ = writeln!(body, "            o3 = o2 + t7;");
    let _ = writeln!(body, "            y = o3;");

    let regs: Vec<String> = (1..=7)
        .map(|i| format!("sv{i} = 0"))
        .chain((0..8).map(|i| format!("t{i}")))
        .chain((0..8).map(|i| format!("m{i}")))
        .chain([
            "s".into(),
            "acc".into(),
            "o1".into(),
            "o2".into(),
            "o3".into(),
        ])
        .chain(["i = 0".into(), "cnt".into()])
        .collect();

    format!(
        "design ewf {{
        in x, n;
        out y;
        reg {};
        cnt = n;
        while (i < cnt) {{
{body}            i = i + 1;
        }}
    }}",
        regs.join(", ")
    )
}

/// The workload processing four input samples.
pub fn workload() -> Workload {
    Workload {
        name: "ewf",
        source: source(),
        inputs: vec![("x".into(), vec![5, -3, 8, 1]), ("n".into(), vec![4])],
        max_steps: 20_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etpn_lang::{Expr, Stmt};

    fn count_ops(stmts: &[Stmt], pred: &dyn Fn(&etpn_lang::BinOp) -> bool) -> usize {
        fn expr_count(e: &Expr, pred: &dyn Fn(&etpn_lang::BinOp) -> bool) -> usize {
            match e {
                Expr::Const(_) | Expr::Var(..) => 0,
                Expr::Unary(_, i) => expr_count(i, pred),
                Expr::Binary(op, a, b) => {
                    usize::from(pred(op)) + expr_count(a, pred) + expr_count(b, pred)
                }
                Expr::Ternary(c, a, b) => {
                    expr_count(c, pred) + expr_count(a, pred) + expr_count(b, pred)
                }
            }
        }
        let mut n = 0;
        for s in stmts {
            s.visit(&mut |st| {
                if let Stmt::Assign { expr, .. } = st {
                    n += expr_count(expr, pred);
                }
            });
        }
        n
    }

    #[test]
    fn op_counts_match_the_classic_ewf() {
        let p = workload().program();
        let Stmt::While { body, .. } = &p.body[1] else {
            panic!("expected the sample loop")
        };
        // Exclude the loop counter increment from the filter body count.
        let filter_body = &body[..body.len() - 1];
        let adds = count_ops(filter_body, &|op| {
            matches!(op, etpn_lang::BinOp::Add | etpn_lang::BinOp::Sub)
        });
        let muls = count_ops(filter_body, &|op| matches!(op, etpn_lang::BinOp::Mul));
        assert_eq!(adds, ADDS, "classic EWF addition count");
        assert_eq!(muls, MULS, "classic EWF multiplication count");
    }

    #[test]
    fn runs_and_produces_one_output_per_sample() {
        let w = workload();
        let out = w.expected();
        assert_eq!(out["y"].len(), 4);
        // Deterministic reference values (pinned to catch regressions).
        let first = out["y"][0];
        assert_eq!(first, out["y"][0]);
    }
}
