//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness exposing the subset of the
//! criterion 0.5 API the workspace's `benches/` use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `bench_with_input`
//! / `finish`, `Bencher::{iter, iter_batched}`, `BatchSize`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple: each benchmark is auto-calibrated to
//! ~10 ms per sample, `sample_size` samples are collected, and the median /
//! min / max per-iteration times are printed. When invoked with `--test`
//! (as `cargo test` does for `harness = false` targets) every routine runs
//! exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How setup outputs are batched in [`Bencher::iter_batched`]; this harness
/// always runs one setup per routine call, so the variants only document
/// intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher {
    mode: Mode,
    /// Captured per-iteration sample durations (ns), one per sample.
    samples_ns: Vec<f64>,
    sample_count: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Measure,
    SmokeTest,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::SmokeTest {
            black_box(routine());
            return;
        }
        // Calibrate: grow the batch until one batch takes >= 10 ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(10) || batch >= 1 << 20 {
                self.samples_ns.push(dt.as_nanos() as f64 / batch as f64);
                break;
            }
            batch *= 4;
        }
        for _ in 1..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.mode == Mode::SmokeTest {
            black_box(routine(setup()));
            return;
        }
        // Accumulate timed spans over enough calls to reach ~10 ms.
        for _ in 0..self.sample_count {
            let mut spent = Duration::ZERO;
            let mut iters = 0u64;
            while spent < Duration::from_millis(10) && iters < 1 << 16 {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                spent += t0.elapsed();
                iters += 1;
            }
            self.samples_ns.push(spent.as_nanos() as f64 / iters as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mode = self.criterion.mode;
        let mut b = Bencher {
            mode,
            samples_ns: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b);
        report(&full, mode, &mut b.samples_ns);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: std::fmt::Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (upstream renders plots here; this harness needs no-op).
    pub fn finish(&mut self) {}
}

fn report(name: &str, mode: Mode, samples_ns: &mut [f64]) {
    match mode {
        Mode::SmokeTest => println!("bench {name}: ok (smoke test)"),
        Mode::Measure => {
            if samples_ns.is_empty() {
                println!("bench {name}: no samples");
                return;
            }
            samples_ns.sort_by(|a, b| a.total_cmp(b));
            let median = samples_ns[samples_ns.len() / 2];
            let lo = samples_ns[0];
            let hi = samples_ns[samples_ns.len() - 1];
            println!(
                "bench {name}: {} [{} .. {}] ({} samples)",
                format_ns(median),
                format_ns(lo),
                format_ns(hi),
                samples_ns.len()
            );
        }
    }
}

/// Benchmark driver; collects groups and prints results to stdout.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness = false bench targets with `--test`;
        // run each routine once so benches stay cheap smoke tests there.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if smoke {
                Mode::SmokeTest
            } else {
                Mode::Measure
            },
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<N, F>(&mut self, id: N, f: F) -> &mut Self
    where
        N: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mode = self.mode;
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 20,
            criterion: self,
        };
        group.bench_function(id, f);
        let _ = mode;
        self
    }
}

/// Bundle benchmark functions into a single group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("closure", 32).to_string(), "closure/32");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::SmokeTest,
        };
        let mut group = c.benchmark_group("g");
        let mut calls = 0;
        group.bench_function("one", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("spin", |b| b.iter(|| std::hint::black_box(2u64 + 2)));
        group.finish();
    }
}
