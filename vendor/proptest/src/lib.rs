//! Offline stand-in for the `proptest` crate.
//!
//! Provides deterministic random-input testing with the same surface syntax
//! as proptest for the subset this workspace uses: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), integer-range and tuple
//! strategies, `prop_map`, `any::<T>()`, and `prop::collection::{vec,
//! hash_set}`. There is no shrinking: a failing case panics with the
//! standard assert message, and the per-test RNG stream is a pure function
//! of the test name and case index, so failures replay exactly.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;

/// Runner configuration (`cases` is the only knob this stand-in honours).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the model-based suites quick
        // while still exercising plenty of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Types with a canonical unconstrained strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                // Full-width bits, including extreme values.
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut SmallRng) -> Option<T> {
        // Bias towards Some, matching upstream's default weighting.
        if rng.gen_bool(0.75) {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection` in the prelude).
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Vector of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Hash set of values from `element`, size at most the draw from `size`
    /// (duplicates collapse, as in upstream proptest).
    pub fn hash_set<S>(element: S, size: core::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> HashSet<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest-style test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Derive a per-test base seed from the test's name (FNV-1a).
pub fn seed_for(test_name: &str, case: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Make a deterministic RNG for one (test, case) pair.
pub fn case_rng(test_name: &str, case: u64) -> SmallRng {
    rand::SeedableRng::seed_from_u64(seed_for(test_name, case))
}

/// Assert inside a proptest body (panics; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `fn` runs `cases` times over fresh draws
/// from its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case as u64);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Tuple + map strategies compose.
        #[test]
        fn tuple_map_composes(pair in (0usize..10, 1usize..5).prop_map(|(a, b)| a * b)) {
            prop_assert!(pair < 50);
        }

        /// Collection strategies respect their size bounds.
        #[test]
        fn vec_respects_bounds(v in prop::collection::vec(0i64..100, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }
    }

    #[test]
    fn seeds_differ_by_case_and_name() {
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("a", 1));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("b", 0));
        assert_eq!(crate::seed_for("a", 3), crate::seed_for("a", 3));
    }
}
