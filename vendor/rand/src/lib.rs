//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this tiny
//! workspace-local crate provides the subset of the rand 0.8 API the ETPN
//! workspace actually uses: a seedable `SmallRng` (xoshiro256++ seeded via
//! SplitMix64), `Rng::gen_range` over integer ranges, `Rng::gen_bool`, and
//! `seq::SliceRandom::shuffle`. Streams are deterministic per seed, which is
//! all the simulator's policies and workload generators require; they do not
//! reproduce upstream rand's exact output.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry points.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 high-quality bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..=50);
            assert!((-50..=50).contains(&v));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
