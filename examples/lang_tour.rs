//! Tour of the behavioural front-end: parse a design, pretty-print it back,
//! compile it to the data/control-flow model, run the Def. 3.2 analysis
//! suite, cross-check the simulator against the reference interpreter, and
//! emit graphviz DOT for both sub-models.
//!
//! ```text
//! cargo run --example lang_tour
//! ```

use etpn::prelude::*;

const SRC: &str = "design clamp_sum {
    in x, n;
    out y;
    reg acc = 0, i = 0, cnt, s;
    cnt = n;
    while (i < cnt) {
        s = x;
        // Clamp each sample into [-100, 100] with a mux, then accumulate.
        acc = acc + (s > 100 ? 100 : (s < -100 ? -100 : s));
        i = i + 1;
    }
    y = acc;
}";

fn main() {
    // Parse + semantic checks, then round-trip through the pretty-printer.
    let prog = etpn::lang::parse_and_check(SRC).expect("valid program");
    println!("--- parsed ({} assignments) ---", prog.assignment_count());
    let printed = etpn::lang::pretty(&prog);
    println!("{printed}");
    assert_eq!(etpn::lang::parse(&printed).unwrap(), prog, "round-trip");

    // Compile to the model and analyse.
    let d = compile_source(SRC).expect("compiles");
    let (v, p, a, s, t) = d.etpn.size();
    println!("model: {v} vertices, {p} ports, {a} arcs, {s} places, {t} transitions");
    let report = check_properly_designed(&d.etpn);
    print!("{}", report.summary());
    assert!(report.is_proper());

    // Run it and cross-check against the independent AST interpreter.
    let inputs = vec![
        ("x".to_string(), vec![42i64, 512, -7, -900, 13]),
        ("n".to_string(), vec![5]),
    ];
    let expected = etpn::workloads::interpret(&prog, &inputs).expect("reference run");
    let mut env = ScriptedEnv::new();
    for (name, vs) in &inputs {
        env = env.with_stream(name, vs.iter().copied());
    }
    let mut sim = Simulator::new(&d.etpn, env);
    for (name, v) in &d.reg_inits {
        sim = sim.init_register(name, *v);
    }
    let trace = sim.run(10_000).expect("simulates");
    let got = trace.values_on_named_output(&d.etpn, "y");
    println!("simulator y = {got:?}, interpreter y = {:?}", expected["y"]);
    assert_eq!(got, expected["y"]);

    // Graphviz output for both sub-models.
    println!(
        "--- control.dot ---\n{}",
        etpn::core::dot::control_dot(&d.etpn)
    );
}
