//! Design-space exploration of the elliptic wave filter: sweep latency caps
//! under the min-area objective and print the resulting area/delay Pareto
//! front — the classic time/area trade-off the transformational method
//! navigates with merges (share units, slower) and parallelisations (more
//! units, faster).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use etpn::prelude::*;

fn main() {
    let w = etpn::workloads::by_name("ewf").expect("catalogued");
    let lib = ModuleLibrary::standard();

    // Anchor the sweep: fully parallel latency vs serial latency.
    let fast =
        synthesize(&w.source, Objective::MinDelay { max_area: None }, &lib).expect("min-delay run");
    let l_fast = fast.final_cost.latency_bound;
    let l_serial = fast.initial_cost.latency_bound;
    println!("latency range: {l_fast} (parallel) … {l_serial} (serial)\n");

    println!(
        "{:>8} {:>9} {:>7} {:>7} {:>7}",
        "cap", "latency", "area", "units", "moves"
    );
    let points = 7u64;
    let span = l_serial.saturating_sub(l_fast).max(1);
    let mut front: Vec<(u64, u64)> = Vec::new();
    for k in 0..points {
        let cap = l_fast + span * k / (points - 1);
        let res = synthesize(
            &w.source,
            Objective::MinArea {
                max_latency: Some(cap),
            },
            &lib,
        )
        .expect("constrained run");
        println!(
            "{:>8} {:>9} {:>7} {:>7} {:>7}",
            cap,
            res.final_cost.latency_bound,
            res.final_cost.total_area,
            res.final_cost.vertices,
            res.transform_log.len()
        );
        front.push((res.final_cost.latency_bound, res.final_cost.total_area));
    }

    // A crude ASCII rendering of the front.
    println!("\narea vs latency:");
    let max_area = front.iter().map(|&(_, a)| a).max().unwrap_or(1);
    for &(lat, area) in &front {
        let bar = (area * 50 / max_area.max(1)) as usize;
        println!("{lat:>6} | {} {area}", "█".repeat(bar));
    }
}
