//! Data-invariant parallelisation on the FIR filter: compile the maximally
//! serial design, saturate the parallelise rewrite, and show that (a) the
//! makespan drops and (b) the external event structure is untouched —
//! Thm. 4.1 in action, checked both structurally (Def. 4.5) and by the
//! randomized semantic oracle.
//!
//! ```text
//! cargo run --example parallelize_fir
//! ```

use etpn::analysis::DataDependence;
use etpn::prelude::*;
use etpn::sim::Simulator;
use etpn::transform::{check_data_invariant, semantic_oracle, OracleConfig};

fn makespan(w: &etpn::workloads::Workload, g: &etpn::core::Etpn, inits: &[(String, i64)]) -> u64 {
    let mut sim = Simulator::new(g, w.env());
    for (n, v) in inits {
        sim = sim.init_register(n, *v);
    }
    sim.run(w.max_steps).expect("runs").steps
}

fn main() {
    let w = etpn::workloads::by_name("fir16").expect("catalogued");
    let d = compile_source(&w.source).expect("compiles");
    let serial_steps = makespan(&w, &d.etpn, &d.reg_inits);

    // Saturate: apply every legal parallelisation until none remains.
    let mut g = d.etpn.clone();
    let dd = DataDependence::compute(&g);
    let moves = Parallelizer::new(&dd).saturate(&mut g);
    let parallel_steps = makespan(&w, &g, &d.reg_inits);

    println!("parallelise moves applied : {moves}");
    println!("makespan serial           : {serial_steps} control steps");
    println!("makespan parallelised     : {parallel_steps} control steps");
    println!(
        "speedup                   : {:.2}x",
        serial_steps as f64 / parallel_steps as f64
    );
    assert!(parallel_steps < serial_steps);

    // Structural equivalence check (decidable, Def. 4.5).
    let verdict = check_data_invariant(&d.etpn, &g);
    println!("Def. 4.5 data-invariance  : {verdict:?}");
    assert!(verdict.is_equivalent());

    // Randomized semantic oracle (falsification attempt, Def. 4.1).
    let cfg = OracleConfig {
        environments: 6,
        stream_len: 6,
        policy_seeds: 1,
        max_steps: w.max_steps,
        value_min: -100,
        value_max: 100,
        threads: 0,
    };
    let oracle = semantic_oracle(&d.etpn, &g, cfg);
    println!("semantic oracle           : {oracle:?}");
    assert!(oracle.passed());

    // And of course the filter output is bit-identical.
    let expected = w.expected();
    let mut sim = Simulator::new(&g, w.env());
    for (n, v) in &d.reg_inits {
        sim = sim.init_register(n, *v);
    }
    let trace = sim.run(w.max_steps).unwrap();
    assert_eq!(trace.values_on_named_output(&g, "y"), expected["y"]);
    println!("filter outputs            : {:?}", expected["y"]);
}
