//! Full CAMAD-style synthesis of the classic differential-equation solver:
//! behavioural source → serial design → critical-path-guided transformation
//! → allocation/binding → netlist. Prints the optimisation trajectory and
//! verifies the optimised hardware still computes the right answer.
//!
//! ```text
//! cargo run --example diffeq_synthesis
//! ```

use etpn::prelude::*;
use etpn::sim::Simulator;

fn main() {
    let w = etpn::workloads::by_name("diffeq").expect("catalogued");
    println!("--- source ---\n{}\n", w.source);

    let lib = ModuleLibrary::standard();
    let res = synthesize(&w.source, Objective::Balanced, &lib).expect("synthesis succeeds");

    println!("--- optimisation trajectory ---");
    println!(
        "initial: area={} latency={} cycle={} states={}",
        res.initial_cost.total_area,
        res.initial_cost.latency_bound,
        res.initial_cost.cycle_time,
        res.initial_cost.states
    );
    for step in &res.optimizer.steps {
        println!(
            "  {:<28} → area={} latency={}",
            step.transform.to_string(),
            step.report.total_area,
            step.report.latency_bound
        );
    }
    println!(
        "final:   area={} latency={} cycle={} states={} ({} evaluations)",
        res.final_cost.total_area,
        res.final_cost.latency_bound,
        res.final_cost.cycle_time,
        res.final_cost.states,
        res.optimizer.evaluations
    );

    println!("\n--- allocation / binding ---\n{}", res.binding.render());

    // The optimised design must compute exactly what the reference does.
    let expected = w.expected();
    let mut sim = Simulator::new(&res.optimized, w.env());
    for (name, v) in &res.compiled.reg_inits {
        sim = sim.init_register(name, *v);
    }
    let trace = sim.run(w.max_steps).expect("optimised design runs");
    for out in ["xout", "yout", "uout"] {
        let got = trace.values_on_named_output(&res.optimized, out);
        println!("{out} = {got:?} (expected {:?})", expected[out]);
        assert_eq!(got, expected[out]);
    }

    println!("\n--- netlist (first 40 lines) ---");
    for line in res.netlist.lines().take(40) {
        println!("{line}");
    }
}
