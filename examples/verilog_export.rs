//! Synthesize a design all the way to Verilog RTL and show the controller.
//!
//! The deterministic maximal-step semantics of the model maps one-to-one
//! onto clocked hardware with a one-hot controller; this example emits the
//! RTL for the GCD benchmark and cross-checks the structural invariants
//! the backend guarantees.
//!
//! ```text
//! cargo run --example verilog_export
//! ```

use etpn::prelude::*;

fn main() {
    let w = etpn::workloads::by_name("gcd").expect("catalogued");
    let lib = ModuleLibrary::standard();
    let res = synthesize(&w.source, Objective::Balanced, &lib).expect("synthesis");
    let rtl = verilog(&res.optimized, &lib, &res.compiled.name);

    println!("{rtl}");

    // Structural sanity a testbench author relies on.
    assert!(rtl.contains("module gcd ("));
    assert!(rtl.contains("output wire signed [63:0] g,"));
    assert!(rtl.contains("output wire g_valid"));
    let states = rtl.matches("\n  reg S_").count();
    let fires = rtl.matches("\n  wire f_").count();
    println!("// {states} one-hot state bits, {fires} transition fire wires");
    assert_eq!(states, res.optimized.ctl.places().len());
    assert_eq!(fires, res.optimized.ctl.transitions().len());
}
