//! Quickstart: build a small data/control flow system by hand, check it is
//! properly designed, and run it against a scripted environment.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use etpn::prelude::*;

fn main() {
    // Data path: two inputs feed an adder; the sum latches into a register
    // that drives an output pad (the paper's §2 running example, completed
    // with I/O).
    let mut b = EtpnBuilder::new();
    let a = b.input("a");
    let c = b.input("b");
    let add = b.operator(Op::Add, 2, "adder");
    let r = b.register("r");
    let y = b.output("y");
    let op_a = b.connect(b.out_port(a, 0), b.in_port(add, 0));
    let op_b = b.connect(b.out_port(c, 0), b.in_port(add, 1));
    let load = b.connect(b.out_port(add, 0), b.in_port(r, 0));
    let emit = b.connect(b.out_port(r, 0), b.in_port(y, 0));

    // Control: s0 computes and latches, s1 emits, then the token drains.
    let s0 = b.place("s0");
    let s1 = b.place("s1");
    let s_end = b.place("end");
    b.control(s0, [op_a, op_b, load]);
    b.control(s1, [emit]);
    b.seq(s0, s1, "t0");
    b.seq(s1, s_end, "t1");
    let fin = b.transition("fin");
    b.flow_st(s_end, fin);
    b.mark(s0);
    let gamma = b.finish().expect("structurally valid");

    // Static analysis: the Def. 3.2 suite.
    let report = check_properly_designed(&gamma);
    println!("{}", report.summary());
    assert!(report.is_proper());

    // Execution (Def. 3.1): the environment supplies one value per input.
    let env = ScriptedEnv::new()
        .with_stream("a", [3])
        .with_stream("b", [4]);
    let trace = Simulator::new(&gamma, env).run(16).expect("runs clean");
    println!(
        "terminated in {} steps with {} external events",
        trace.steps,
        trace.event_count()
    );
    for e in &trace.events {
        println!(
            "  step {}: arc {} = {} (state {})",
            e.step,
            e.arc,
            e.value,
            gamma.ctl.place(e.place).name
        );
    }
    let outputs = trace.values_on_named_output(&gamma, "y");
    println!("y = {outputs:?}");
    assert_eq!(outputs, vec![7]);

    // The same design, rendered for graphviz.
    println!(
        "\n--- datapath.dot ---\n{}",
        etpn::core::dot::datapath_dot(&gamma)
    );
}
