//! The backend differential battery: the compiled step engine against the
//! interpreter reference, over the whole benchmark catalogue × firing
//! policies × policy seeds × fault plans.
//!
//! "Bit-identical" here is literal: the tests byte-compare the `Debug`
//! rendering of whole traces (external events, termination, step/firing
//! counts, watched waveforms, marking rows, coverage DBs) and the rendered
//! VCD documents — not a projection of them. Any divergence in any field
//! of any run fails the battery.

use etpn_core::Etpn;
use etpn_sim::{
    vcd, Backend, Fault, FaultKind, FaultPlan, FaultSite, FaultWindow, FiringPolicy, Simulator,
    Termination, Trace,
};
use etpn_synth::CompiledDesign;
use etpn_workloads::{by_name, catalog, random_design, Workload};

/// Build a fully instrumented simulator for a catalogue workload.
fn sim<'a>(
    w: &Workload,
    d: &'a CompiledDesign,
    backend: Backend,
    policy: FiringPolicy,
) -> Simulator<'a, etpn_sim::ScriptedEnv> {
    let mut sim = Simulator::new(&d.etpn, w.env())
        .with_backend(backend)
        .with_policy(policy)
        .with_coverage()
        .watch_registers()
        .watch_control();
    for (name, v) in &d.reg_inits {
        sim = sim.init_register(name, *v);
    }
    sim
}

/// Run one configuration on both backends and demand byte-identity of the
/// full trace (or of the error) and of the rendered VCD.
fn assert_identical(w: &Workload, d: &CompiledDesign, policy: FiringPolicy) {
    let interp = sim(w, d, Backend::Interp, policy).run(w.max_steps);
    let compiled = sim(w, d, Backend::Compiled, policy).run(w.max_steps);
    assert_eq!(
        format!("{interp:?}"),
        format!("{compiled:?}"),
        "{} under {policy:?}: interp and compiled traces diverge",
        w.name
    );
    if let (Ok(ti), Ok(tc)) = (&interp, &compiled) {
        assert_eq!(
            vcd::render(&d.etpn, ti),
            vcd::render(&d.etpn, tc),
            "{} under {policy:?}: VCD bytes diverge",
            w.name
        );
    }
}

/// Every catalogue workload, under the deterministic policy and two seeds
/// of each randomized policy: whole-trace byte-identity, VCD included.
#[test]
fn full_battery_is_byte_identical() {
    for w in catalog() {
        let d = etpn_synth::compile_source(&w.source).expect("workload compiles");
        let mut policies = vec![FiringPolicy::MaximalStep];
        for seed in [3u64, 11] {
            policies.push(FiringPolicy::RandomMaximal { seed });
            policies.push(FiringPolicy::SingleRandom { seed });
        }
        for policy in policies {
            assert_identical(&w, &d, policy);
        }
    }
}

/// The no-dirty ablation engine is also exact (it shares the compiled
/// tables but re-evaluates everything, so it cross-checks the tables
/// independently of the dirty set).
#[test]
fn no_dirty_ablation_is_byte_identical() {
    for name in ["gcd", "diffeq", "fir16"] {
        let w = by_name(name).unwrap();
        let d = etpn_synth::compile_source(&w.source).unwrap();
        let interp = sim(&w, &d, Backend::Interp, FiringPolicy::MaximalStep).run(w.max_steps);
        let nodirty =
            sim(&w, &d, Backend::CompiledNoDirty, FiringPolicy::MaximalStep).run(w.max_steps);
        assert_eq!(format!("{interp:?}"), format!("{nodirty:?}"), "{name}");
    }
}

/// Coverage DBs (place/transition/arc/guard-outcome hits) must be equal —
/// the PR 5 coverage hooks observe the same step stream on both engines.
#[test]
fn coverage_dbs_are_identical() {
    for w in catalog() {
        let d = etpn_synth::compile_source(&w.source).unwrap();
        let ti = sim(&w, &d, Backend::Interp, FiringPolicy::MaximalStep)
            .run(w.max_steps)
            .unwrap();
        let tc = sim(&w, &d, Backend::Compiled, FiringPolicy::MaximalStep)
            .run(w.max_steps)
            .unwrap();
        let (ci, cc) = (ti.cov.expect("interp cov"), tc.cov.expect("compiled cov"));
        assert_eq!(ci, cc, "{}: coverage DBs diverge", w.name);
        assert!(ci.runs > 0);
    }
}

/// Every `Termination` variant the simulator can produce is produced, and
/// produced identically, by both engines.
#[test]
fn termination_variants_agree() {
    let run_both = |g: &Etpn, env: etpn_sim::ScriptedEnv, steps: u64| {
        let ti = Simulator::new(g, env.clone()).run(steps).unwrap();
        let tc = Simulator::new(g, env).compiled().run(steps).unwrap();
        assert_eq!(ti.termination, tc.termination);
        ti.termination
    };

    // Terminated: gcd runs to completion.
    let w = by_name("gcd").unwrap();
    let d = etpn_synth::compile_source(&w.source).unwrap();
    let term = {
        let ti = sim(&w, &d, Backend::Interp, FiringPolicy::MaximalStep)
            .run(w.max_steps)
            .unwrap();
        let tc = sim(&w, &d, Backend::Compiled, FiringPolicy::MaximalStep)
            .run(w.max_steps)
            .unwrap();
        assert_eq!(ti.termination, tc.termination);
        ti.termination
    };
    assert_eq!(term, Termination::Terminated);

    // StepLimit: a design starved of budget.
    let g = random_design(1, 32, 4);
    let env = etpn_sim::ScriptedEnv::new().with_stream("x", (0..64).collect::<Vec<_>>());
    assert_eq!(run_both(&g, env, 3), Termination::StepLimit);

    // Deadlock: starve a join of one partner token (losing a design's
    // *only* token terminates it instead — Def. 3.1(6)). Both engines must
    // classify the stuck join identically after the conservative resync
    // the control fault forces on the compiled side.
    let mut b = etpn_core::EtpnBuilder::new();
    let s0 = b.place("s0");
    let sa = b.place("sa");
    let sb = b.place("sb");
    let sj = b.place("sj");
    let fork = b.transition("fork");
    b.flow_st(s0, fork);
    b.flow_ts(fork, sa);
    b.flow_ts(fork, sb);
    let join = b.transition("join");
    b.flow_st(sa, join);
    b.flow_st(sb, join);
    b.flow_ts(join, sj);
    let t_end = b.transition("t_end");
    b.flow_st(sj, t_end);
    b.mark(s0);
    let g = b.finish().unwrap();
    let plan = FaultPlan::single(Fault {
        site: FaultSite::Place(sa),
        kind: FaultKind::TokenLoss,
        window: FaultWindow::Transient(1),
    });
    let ti = Simulator::new(&g, etpn_sim::ScriptedEnv::new())
        .with_faults(plan.clone())
        .run(200)
        .unwrap();
    let tc = Simulator::new(&g, etpn_sim::ScriptedEnv::new())
        .compiled()
        .with_faults(plan)
        .run(200)
        .unwrap();
    assert_eq!(ti.termination, tc.termination);
    assert_eq!(ti.termination, Termination::Deadlock);
}

/// Random single-fault plans (data and control, transient and permanent)
/// over gcd and diffeq: the engines must agree on every faulty run,
/// including runs that end in a monitor error instead of a trace.
#[test]
fn fault_plans_are_byte_identical() {
    for name in ["gcd", "diffeq"] {
        let w = by_name(name).unwrap();
        let d = etpn_synth::compile_source(&w.source).unwrap();
        let mut faults = FaultPlan::random_faults(&d.etpn, 42, 16, w.max_steps.min(200));
        // The deterministic control sweep guarantees the battery crosses
        // outcome classes: duplicating the marked place's token trips the
        // Def. 3.2(2) monitor, losing it cuts the run short.
        faults.extend(FaultPlan::sweep_control_places(&d.etpn, 1));
        assert!(!faults.is_empty());
        let mut outcomes = std::collections::BTreeMap::<String, usize>::new();
        for fault in faults {
            let plan = FaultPlan::single(fault);
            let run = |backend| {
                let mut s = Simulator::new(&d.etpn, w.env())
                    .with_backend(backend)
                    .with_faults(plan.clone())
                    .with_coverage();
                for (n, v) in &d.reg_inits {
                    s = s.init_register(n, *v);
                }
                s.run(w.max_steps)
            };
            let interp = run(Backend::Interp);
            let compiled = run(Backend::Compiled);
            assert_eq!(
                format!("{interp:?}"),
                format!("{compiled:?}"),
                "{name}: {} diverges",
                fault.describe(&d.etpn)
            );
            let key = match &interp {
                Ok(t) => format!("{:?}", t.termination),
                Err(_) => "error".to_string(),
            };
            *outcomes.entry(key).or_default() += 1;
        }
        // The sweep must actually exercise more than one outcome class,
        // otherwise the agreement above proves little.
        assert!(
            outcomes.len() > 1,
            "{name}: fault sweep produced a single outcome class: {outcomes:?}"
        );
    }
}

/// External event structures (Def. 3.4/3.5) extracted from both engines'
/// traces are equal for every workload — the headline claim of the PR,
/// stated on the paper's own observability notion.
#[test]
fn event_structures_agree_on_every_workload() {
    for w in catalog() {
        let d = etpn_synth::compile_source(&w.source).unwrap();
        let run = |backend| -> Trace {
            let mut s = Simulator::new(&d.etpn, w.env()).with_backend(backend);
            for (n, v) in &d.reg_inits {
                s = s.init_register(n, *v);
            }
            s.run(w.max_steps).unwrap()
        };
        let si = etpn_sim::event_structure(&d.etpn, &run(Backend::Interp));
        let sc = etpn_sim::event_structure(&d.etpn, &run(Backend::Compiled));
        assert_eq!(si, sc, "{}: {:?}", w.name, si.first_difference(&sc));
    }
}
