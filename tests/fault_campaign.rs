//! End-to-end fault-injection campaigns through the public facade.
//!
//! The acceptance bar of the fault-injection PR: a *full* single-fault
//! sweep (every data-path port × stuck-at-0/1/bit-flip, every control
//! place × token loss/duplication) over both the GCD and the differential
//! equation workloads must complete with **zero campaign aborts** — every
//! fault classified exactly once, every injected failure contained inside
//! its own job, and the golden run byte-identical after the sweep.

use etpn::core::{Value, VertexId};
use etpn::sim::{
    run_campaign, CampaignConfig, Environment, FaultClass, Fleet, SimError, SimJob, Termination,
};
use etpn::workloads::by_name;
use std::time::Duration;

fn sweep(
    workload: &str,
    include_control: bool,
) -> (etpn::synth::CompiledDesign, etpn::sim::CampaignReport) {
    let w = by_name(workload).expect("workload exists");
    let d = etpn::synth::compile_source(&w.source).expect("workload compiles");
    let mut proto = SimJob::new(&d.etpn, w.env()).max_steps(w.max_steps);
    for (n, v) in &d.reg_inits {
        proto = proto.init_register(n, *v);
    }
    let cfg = CampaignConfig {
        include_control,
        workers: 4,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&proto, &cfg).expect("golden run succeeds");
    (d, report)
}

/// The full gcd sweep: data and control faults, no aborts, total
/// partition, clean path untouched, at least one of every outcome the
/// design can produce (control-token loss must hang a sequential design).
#[test]
fn gcd_full_sweep_has_no_campaign_aborts() {
    let (d, report) = sweep("gcd", true);
    assert!(!report.outcomes.is_empty());
    assert!(report.is_total_partition(), "{}", report.summary(&d.etpn));
    assert!(
        report.golden_unchanged,
        "injection leaked into the clean path"
    );
    assert_eq!(report.fleet.panics, 0, "a job escaped containment");
    assert!(report.golden_termination == Termination::Terminated);
    assert!(report.count(FaultClass::Masked) > 0);
    assert!(report.count(FaultClass::SilentCorruption) > 0);
    assert!(
        report.count(FaultClass::Hang) > 0,
        "token loss should hang gcd"
    );
    let total: usize = [
        FaultClass::Masked,
        FaultClass::SilentCorruption,
        FaultClass::Detected,
        FaultClass::Hang,
    ]
    .iter()
    .map(|&c| report.count(c))
    .sum();
    assert_eq!(total, report.outcomes.len());
}

/// Same bar for the diffeq workload (larger data path, multiplier-heavy).
#[test]
fn diffeq_full_sweep_has_no_campaign_aborts() {
    let (d, report) = sweep("diffeq", true);
    assert!(!report.outcomes.is_empty());
    assert!(report.is_total_partition(), "{}", report.summary(&d.etpn));
    assert!(report.golden_unchanged);
    assert_eq!(report.fleet.panics, 0);
}

/// The vulnerability map renders a valid heat DOT naming the sdc counts.
#[test]
fn gcd_vulnerability_map_is_renderable() {
    let (d, report) = sweep("gcd", false);
    let dot = report.vulnerability_dot(&d.etpn);
    assert!(dot.starts_with("digraph datapath {"), "{dot}");
    if report.count(FaultClass::SilentCorruption) > 0 {
        assert!(
            dot.contains("reds9"),
            "sdc heat should colour a vertex:\n{dot}"
        );
    }
}

/// An environment that detonates on its first read: the fleet must contain
/// the panic inside the job, burn the bounded retry budget, and surface
/// `SimError::Panicked` — never abort the batch or poison its neighbours.
#[derive(Clone)]
enum BombEnv {
    Healthy(etpn::sim::ScriptedEnv),
    Bomb,
}

impl Environment for BombEnv {
    fn value_at(&self, input: VertexId, name: &str, k: u64) -> Value {
        match self {
            BombEnv::Healthy(env) => env.value_at(input, name, k),
            BombEnv::Bomb => panic!("injected environment panic"),
        }
    }
    fn fingerprint(&self) -> Option<u64> {
        match self {
            BombEnv::Healthy(env) => env.fingerprint(),
            BombEnv::Bomb => None,
        }
    }
}

#[test]
fn environment_panics_are_contained_per_job() {
    let w = by_name("gcd").expect("gcd exists");
    let d = etpn::synth::compile_source(&w.source).expect("gcd compiles");
    let job = |env: BombEnv| {
        let mut j = SimJob::new(&d.etpn, env).max_steps(w.max_steps);
        for (n, v) in &d.reg_inits {
            j = j.init_register(n, *v);
        }
        j
    };
    let jobs = vec![
        job(BombEnv::Healthy(w.env())),
        job(BombEnv::Bomb),
        job(BombEnv::Healthy(w.env())),
    ];
    let batch = Fleet::new(2).with_retries(2).run_batch(jobs);
    assert_eq!(batch.stats.panics, 3, "initial attempt + 2 retries");
    assert!(batch.results[0].is_ok(), "healthy neighbour survives");
    assert!(batch.results[2].is_ok(), "healthy neighbour survives");
    match &batch.results[1] {
        Err(SimError::Panicked { message, retries }) => {
            assert!(message.contains("injected environment panic"), "{message}");
            assert_eq!(*retries, 2);
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }
}

/// A zero wall-clock budget cuts the run with `Termination::Budget` — the
/// hang-mitigation path campaigns rely on for runaway faulty jobs.
#[test]
fn wall_budget_truncates_a_run() {
    let w = by_name("gcd").expect("gcd exists");
    let d = etpn::synth::compile_source(&w.source).expect("gcd compiles");
    let mut sim = etpn::sim::Simulator::new(&d.etpn, w.env());
    for (n, v) in &d.reg_inits {
        sim = sim.init_register(n, *v);
    }
    let trace = sim
        .with_wall_budget(Duration::ZERO)
        .run(w.max_steps)
        .expect("budget truncation is not an error");
    assert_eq!(trace.termination, Termination::Budget);
    assert!(trace.termination.is_hang());
}
