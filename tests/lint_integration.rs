//! Integration tests for the `etpn-lint` static verifier.
//!
//! Three families:
//!
//! 1. **Cleanliness** — every shipped workload and example lints to zero
//!    `E2xx` findings (properly designed *and* race/dead-code free).
//! 2. **Seeded mutations** — designs deliberately broken in ways the
//!    Def. 3.2 `check_properly_designed` procedure cannot see (its
//!    parallelism judgement lives on the acyclic skeleton), which the new
//!    lints must catch: a write-write race hidden behind a dead
//!    synchronising transition, and a floating dead subsystem.
//! 3. **Properties** — the structural fast paths agree with exhaustive
//!    reachability on random designs: invariant-certified safeness is
//!    never contradicted by exploration, and the race lint never reports
//!    a pair the complete reachability graph proves non-concurrent.

use etpn::analysis::proper::check_properly_designed;
use etpn::analysis::reach::{is_safe, ReachGraph};
use etpn::analysis::{cyclic_closure, p_invariants};
use etpn::lint::{lint, lint_compiled, possibly_concurrent_writes, LintConfig, Severity};
use etpn::synth::SourceMap;
use etpn_workloads::{catalog, random_net, random_program, ProgramShape};
use proptest::prelude::*;

/// Every shipped workload is free of `E2xx` findings (Def. 3.2 holds) —
/// and in fact free of warnings too: the lints hold on real designs.
#[test]
fn shipped_workloads_lint_clean() {
    for w in catalog() {
        let d = etpn::synth::compile_source(&w.source)
            .unwrap_or_else(|e| panic!("{} does not compile: {e}", w.name));
        let report = lint_compiled(&d, &LintConfig::default());
        let errors: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:?}", w.name);
        let warnings: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect();
        assert!(warnings.is_empty(), "{}: {warnings:?}", w.name);
    }
}

/// The shipped example file lints clean through the same path `etpnc
/// check` uses.
#[test]
fn gcd_example_lints_clean() {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/gcd.hdl"))
        .expect("example present");
    let d = etpn::synth::compile_source(&src).expect("compiles");
    let report = lint_compiled(&d, &LintConfig::default());
    assert!(!report.has_denied(true), "{:?}", report.diagnostics);
}

/// Seed a write-write race into compiled gcd that `check_properly_designed`
/// misses.
///
/// The mutation: a marked rogue place `s_rogue` opens a new arc driving
/// the `x` register, and a transition `t_never` (whose second input place
/// `s_never` is unmarked and has no producer) connects `s_rogue` to the
/// design's initial place. The flow path `s_rogue → t_never → s_init`
/// makes `s_rogue` *sequential* to every working state on the acyclic
/// skeleton, so the Def. 3.2(1) parallel-resource check never compares
/// them — yet `t_never` can never fire, so `s_rogue` stays marked while
/// the real `x` writers run: a true write-write race.
#[test]
fn seeded_race_mutation_caught_by_lint_not_proper() {
    let d = etpn::synth::compile_source(&etpn_workloads::gcd::source()).expect("compiles");
    let mut g = d.etpn.clone();

    let x = g.dp.vertex_by_name("x").expect("gcd has register x");
    let y = g.dp.vertex_by_name("y").expect("gcd has register y");
    let rogue_arc =
        g.dp.connect(g.dp.out_port(y, 0), g.dp.in_port(x, 0))
            .expect("new write arc");
    let s_init = *g
        .ctl
        .initial_places()
        .first()
        .expect("gcd has an initial place");
    let s_rogue = g.ctl.add_place("s_rogue");
    let s_never = g.ctl.add_place("s_never");
    let t_never = g.ctl.add_transition("t_never");
    g.ctl.flow_st(s_rogue, t_never).unwrap();
    g.ctl.flow_st(s_never, t_never).unwrap();
    g.ctl.flow_ts(t_never, s_init).unwrap();
    g.ctl.add_ctrl(s_rogue, rogue_arc);
    g.ctl.set_marked0(s_rogue, true);

    // The old checker is blind to it: the design still passes Def. 3.2.
    let proper = check_properly_designed(&g);
    assert!(proper.is_proper(), "{}", proper.summary());

    // The reachability graph confirms the race is real, not a lint
    // over-approximation artefact: s_rogue is co-marked with an x-writer.
    let graph = ReachGraph::explore(&g.ctl, 1 << 16);
    assert!(graph.complete);
    let races = possibly_concurrent_writes(&g);
    assert!(
        races
            .iter()
            .any(|r| (r.s1 == s_rogue || r.s2 == s_rogue) && graph.ever_comarked(r.s1, r.s2)),
        "{races:?}"
    );

    // And the lint reports it as W307, along with the dead scaffolding.
    let report = lint(&g, &SourceMap::default(), &LintConfig::default());
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.id).collect();
    assert!(codes.contains(&"W307"), "{:?}", report.diagnostics);
    assert!(codes.contains(&"W301"), "s_never is dead: {codes:?}");
    assert!(codes.contains(&"W302"), "t_never is dead: {codes:?}");
    assert!(!codes.iter().any(|c| c.starts_with("E2")), "{codes:?}");
}

/// Seed a floating dead subsystem into compiled diffeq: an unmarked,
/// producer-less place opening a write into a fresh register, plus a dead
/// transition. `check_properly_designed` still passes (the subsystem
/// shares nothing and does observable work *if it ever ran*), but every
/// dead-code layer fires: place, transition, vertex, and arc.
#[test]
fn seeded_dead_code_mutation_caught_on_every_layer() {
    let d = etpn::synth::compile_source(&etpn_workloads::diffeq::source()).expect("compiles");
    let mut g = d.etpn.clone();

    let src_reg =
        g.dp.vertices()
            .iter()
            .find(|(v, vx)| {
                vx.kind == etpn::core::vertex::VertexKind::Unit && g.dp.is_sequential_vertex(*v)
            })
            .map(|(v, _)| v)
            .expect("diffeq has a register");
    let reg_dead = g.dp.add_register("reg_dead");
    let dead_arc =
        g.dp.connect(g.dp.out_port(src_reg, 0), g.dp.in_port(reg_dead, 0))
            .expect("new arc");
    let s_float = g.ctl.add_place("s_float");
    let t_dead = g.ctl.add_transition("t_dead");
    g.ctl.flow_st(s_float, t_dead).unwrap();
    g.ctl.add_ctrl(s_float, dead_arc);

    let proper = check_properly_designed(&g);
    assert!(proper.is_proper(), "{}", proper.summary());

    let report = lint(&g, &SourceMap::default(), &LintConfig::default());
    let has = |code: &str, what: &str| {
        assert!(
            report.diagnostics.iter().any(|d| d.code.id == code),
            "missing {code} ({what}): {:?}",
            report.diagnostics
        );
    };
    has("W301", "dead place s_float");
    has("W302", "dead transition t_dead");
    has("W303", "dead vertex reg_dead");
    has("W304", "dead arc into reg_dead");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code.id.starts_with("E2")),
        "{:?}",
        report.diagnostics
    );
}

/// The SARIF output of a real finding round-trips through the JSON parser
/// with the shape CI ingesters require.
#[test]
fn sarif_output_shape() {
    let src = "design w { in a; out y; reg r, s;\n  r = a;\n  s = a;\n  y = s; }";
    let d = etpn::synth::compile_source(src).expect("compiles");
    let report = lint_compiled(&d, &LintConfig::default());
    assert!(!report.diagnostics.is_empty(), "fixture must have findings");
    let doc = etpn::core::json::parse(&etpn::lint::render::sarif(
        &report.diagnostics,
        "w.hdl",
        src,
    ))
    .expect("valid JSON");
    assert_eq!(doc.req("version").unwrap().as_str().unwrap(), "2.1.0");
    let run = &doc.req("runs").unwrap().as_arr().unwrap()[0];
    let rules = run
        .req("tool")
        .unwrap()
        .req("driver")
        .unwrap()
        .req("rules")
        .unwrap()
        .as_arr()
        .unwrap()
        .len();
    assert_eq!(rules, etpn::lint::ALL_CODES.len());
    for result in run.req("results").unwrap().as_arr().unwrap() {
        let id = result.req("ruleId").unwrap().as_str().unwrap();
        assert!(etpn::lint::lookup(id).is_some(), "unknown ruleId {id}");
        let idx = result.req("ruleIndex").unwrap().as_index().unwrap();
        assert!(idx < rules);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant-certified safeness is never contradicted by exhaustive
    /// exploration: `structurally_safe` on the cyclic closure is a sound
    /// fast path for the safeness lint.
    #[test]
    fn structural_safeness_implies_explored_safeness(
        seed in 0u64..500,
        n_places in 3usize..24,
    ) {
        let g = random_net(seed, n_places);
        let closed = cyclic_closure(&g.ctl);
        if p_invariants(&closed).structurally_safe(&closed) {
            prop_assert_eq!(is_safe(&g.ctl, 1 << 14), Some(true));
        }
    }

    /// The race lint over-approximates concurrency but never *invents*
    /// it on compiled structured programs: every reported pair really is
    /// co-marked somewhere in the (complete) reachability graph.
    #[test]
    fn race_lint_agrees_with_reachability(
        seed in 0u64..300,
        assignments in 4usize..20,
        par_percent in 0u32..60,
    ) {
        let prog = random_program(seed, ProgramShape {
            assignments,
            registers: 5,
            par_percent,
        });
        let d = etpn::synth::compile(&prog).expect("compiles");
        let graph = ReachGraph::explore(&d.etpn.ctl, 1 << 14);
        // With an exhausted budget there is nothing to compare against.
        if graph.complete {
            for pair in possibly_concurrent_writes(&d.etpn) {
                prop_assert!(
                    graph.ever_comarked(pair.s1, pair.s2),
                    "false positive: {pair:?} never co-marked"
                );
            }
        }
    }
}
