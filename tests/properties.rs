//! Property-based tests over random programs and designs.
//!
//! The generators produce random *valid* behavioural programs
//! (`etpn_workloads::random_program`), which are then pushed through the
//! whole stack: compilation totality, proper-design preservation,
//! simulator/interpreter agreement, and transformation round-trips.

use etpn_analysis::proper::check_properly_designed;
use etpn_core::ControlRelations;
use etpn_sim::{ScriptedEnv, Simulator, Termination};
use etpn_transform::{check_data_invariant, Parallelizer, Serializer};
use etpn_workloads::{interpret, random_program, ProgramShape};
use proptest::prelude::*;

fn shape_strategy() -> impl Strategy<Value = ProgramShape> {
    (4usize..40, 4usize..10, 0u32..60).prop_map(|(assignments, registers, par_percent)| {
        ProgramShape {
            assignments,
            registers,
            par_percent,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated program compiles into a properly designed system.
    #[test]
    fn random_programs_compile_properly(seed in 0u64..1000, shape in shape_strategy()) {
        let prog = random_program(seed, shape);
        let src = etpn_lang::pretty(&prog);
        let d = etpn_synth::compile_source(&src).expect("compiles");
        let report = check_properly_designed(&d.etpn);
        prop_assert!(report.is_proper(), "{}", report.summary());
    }

    /// The ETPN simulation of a random program agrees with the independent
    /// AST interpreter on every output.
    #[test]
    fn simulator_matches_interpreter(seed in 0u64..1000, shape in shape_strategy(), x in -1000i64..1000) {
        let prog = random_program(seed, shape);
        let inputs = vec![("x".to_string(), vec![x])];
        let expected = interpret(&prog, &inputs).expect("reference run");
        let d = etpn_synth::compile(&prog).expect("compiles");
        let env = ScriptedEnv::new().with_stream("x", [x]);
        let mut sim = Simulator::new(&d.etpn, env);
        for (name, v) in &d.reg_inits {
            sim = sim.init_register(name, *v);
        }
        let trace = sim.run(100_000).expect("simulates");
        prop_assert_eq!(trace.termination, Termination::Terminated);
        for out in &prog.outputs {
            prop_assert_eq!(
                trace.values_on_named_output(&d.etpn, out),
                expected[out].clone(),
                "output {} diverged", out
            );
        }
    }

    /// Parallelise-then-serialise restores the exact order relations and
    /// Def. 4.5 equivalence to the original.
    #[test]
    fn parallelize_serialize_roundtrip(seed in 0u64..500) {
        let prog = random_program(seed, ProgramShape {
            assignments: 12,
            registers: 6,
            par_percent: 0,
        });
        let g0 = etpn_synth::compile(&prog).expect("compiles").etpn;
        let dd = etpn_analysis::DataDependence::compute(&g0);
        let par = Parallelizer::new(&dd);
        // Find any legal pair; not every random program has one.
        let pair = g0
            .ctl
            .transitions()
            .iter()
            .filter(|(_, tr)| tr.guards.is_empty() && tr.pre.len() == 1 && tr.post.len() == 1)
            .map(|(_, tr)| (tr.pre[0], tr.post[0]))
            .find(|&(a, b)| par.check(&g0, a, b).is_ok());
        if let Some((a, b)) = pair {
            let mut g = g0.clone();
            par.apply(&mut g, a, b).unwrap();
            prop_assert!(check_data_invariant(&g0, &g).is_equivalent());
            Serializer::apply(&mut g, a, b).unwrap();
            // Order relations fully restored.
            let r0 = ControlRelations::compute(&g0.ctl);
            let r1 = ControlRelations::compute(&g.ctl);
            for &si in r0.places() {
                for &sj in r0.places() {
                    prop_assert_eq!(r0.leads_to(si, sj), r1.leads_to(si, sj));
                }
            }
        }
    }

    /// The pretty-printer round-trips every generated program. Spans in
    /// the reparsed AST differ (they index the printed text), so the
    /// round-trip is asserted on the printed fixed point.
    #[test]
    fn pretty_parse_roundtrip(seed in 0u64..1000, shape in shape_strategy()) {
        let prog = random_program(seed, shape);
        let printed = etpn_lang::pretty(&prog);
        let reparsed = etpn_lang::parse(&printed).expect("pretty output parses");
        prop_assert_eq!(printed, etpn_lang::pretty(&reparsed));
    }

    /// Random mixed transformation sequences never change a random
    /// program's outputs (the E1/E2 protocol generalised beyond the
    /// benchmark catalogue).
    #[test]
    fn random_transform_sequences_preserve_outputs(seed in 0u64..300, tseed in 0u64..10) {
        let prog = random_program(seed, ProgramShape {
            assignments: 12,
            registers: 6,
            par_percent: 25,
        });
        let inputs = vec![("x".to_string(), vec![11])];
        let expected = interpret(&prog, &inputs).expect("reference run");
        let d = etpn_synth::compile(&prog).expect("compiles");
        let (g2, _) = etpn_bench::seqgen::random_sequence(
            &d.etpn,
            etpn_bench::seqgen::Family::Mixed,
            tseed,
            6,
        );
        let env = ScriptedEnv::new().with_stream("x", [11]);
        let mut sim = Simulator::new(&g2, env);
        for (name, v) in &d.reg_inits {
            sim = sim.init_register(name, *v);
        }
        let trace = sim.run(100_000).expect("simulates");
        for out in &prog.outputs {
            prop_assert_eq!(
                trace.values_on_named_output(&g2, out),
                expected[out].clone(),
                "output {}", out
            );
        }
    }

    /// Unrolling any structured loop of a random program preserves outputs.
    #[test]
    fn unroll_preserves_outputs(n in 0i64..12) {
        let src = "design cnt { in n; out y; reg i = 0, lim, acc = 1;
            lim = n;
            while (i < lim) {
                acc = acc + acc;
                i = i + 1;
            }
            y = acc; }";
        let d = etpn_synth::compile_source(src).expect("compiles");
        let mut g = d.etpn.clone();
        for decide in etpn_transform::find_loops(&g) {
            etpn_transform::unroll_loop(&mut g, decide).expect("unrolls");
        }
        let run = |g: &etpn_core::Etpn| {
            let mut sim = Simulator::new(g, ScriptedEnv::new().with_stream("n", [n]));
            for (name, v) in &d.reg_inits {
                sim = sim.init_register(name, *v);
            }
            sim.run(100_000).unwrap().values_on_named_output(g, "y")
        };
        prop_assert_eq!(run(&d.etpn), run(&g));
    }

    /// Compaction and compilation preserve the program's observable
    /// semantics under *any* firing policy (policy-invariance on random
    /// programs — the generalised E10).
    #[test]
    fn random_programs_are_policy_invariant(seed in 0u64..200, policy_seed in 0u64..8) {
        let prog = random_program(seed, ProgramShape {
            assignments: 10,
            registers: 5,
            par_percent: 50,
        });
        let d = etpn_synth::compile(&prog).expect("compiles");
        let env = ScriptedEnv::new().with_stream("x", [7]);
        let run = |policy| {
            let mut sim = Simulator::new(&d.etpn, env.clone()).with_policy(policy);
            for (name, v) in &d.reg_inits {
                sim = sim.init_register(name, *v);
            }
            sim.run(100_000).expect("simulates")
        };
        let reference = run(etpn_sim::FiringPolicy::MaximalStep);
        let other = run(etpn_sim::FiringPolicy::SingleRandom { seed: policy_seed });
        let s1 = etpn_sim::event_structure(&d.etpn, &reference);
        let s2 = etpn_sim::event_structure(&d.etpn, &other);
        prop_assert_eq!(&s1, &s2, "difference: {:?}", s1.first_difference(&s2));
    }
}

// Backend cross-checks: the compiled step engine against the interpreter
// reference, on `random_design` (full designs: expression trees, guarded
// branches, diamonds, an input stream and an external output). A failing
// case replays from the printed integers alone.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The compiled backend produces a bit-identical run for any random
    /// design, policy, and input stream: same external event structure,
    /// same termination, same step and firing counts.
    #[test]
    fn compiled_backend_matches_interpreter(
        seed in 0u64..10_000,
        n_places in 2usize..48,
        n_regs in 1usize..9,
        policy_seed in 0u64..4,
        xs in prop::collection::vec(-8i64..8, 1usize..48),
    ) {
        let g = etpn_workloads::random_design(seed, n_places, n_regs);
        let policies = [
            etpn_sim::FiringPolicy::MaximalStep,
            etpn_sim::FiringPolicy::RandomMaximal { seed: policy_seed },
            etpn_sim::FiringPolicy::SingleRandom { seed: policy_seed },
        ];
        for policy in policies {
            let run = |backend| {
                let env = ScriptedEnv::new().with_stream("x", xs.clone());
                Simulator::new(&g, env)
                    .with_backend(backend)
                    .with_policy(policy)
                    .run(300)
            };
            let interp = run(etpn_sim::Backend::Interp);
            let compiled = run(etpn_sim::Backend::Compiled);
            let nodirty = run(etpn_sim::Backend::CompiledNoDirty);
            match (&interp, &compiled, &nodirty) {
                (Ok(ti), Ok(tc), Ok(tn)) => {
                    let si = etpn_sim::event_structure(&g, ti);
                    let sc = etpn_sim::event_structure(&g, tc);
                    let sn = etpn_sim::event_structure(&g, tn);
                    prop_assert_eq!(&si, &sc, "policy {:?}: {:?}", policy, si.first_difference(&sc));
                    prop_assert_eq!(&si, &sn, "no-dirty, policy {:?}: {:?}", policy, si.first_difference(&sn));
                    prop_assert_eq!(ti.termination, tc.termination, "policy {:?}", policy);
                    prop_assert_eq!(ti.termination, tn.termination, "policy {:?}", policy);
                    prop_assert_eq!((ti.steps, ti.firings), (tc.steps, tc.firings), "policy {:?}", policy);
                }
                _ => {
                    // Errors (if the generator ever produces one) must be
                    // identical across all three engines.
                    prop_assert_eq!(
                        format!("{interp:?}"),
                        format!("{compiled:?}"),
                        "policy {:?}", policy
                    );
                    prop_assert_eq!(
                        format!("{interp:?}"),
                        format!("{nodirty:?}"),
                        "policy {:?}", policy
                    );
                }
            }
        }
    }

    /// Dirty-set soundness: in verified mode the compiled engine
    /// cross-checks every incremental step against a fresh full
    /// re-evaluation and panics on any divergence — so completing the run
    /// *is* the property.
    #[test]
    fn dirty_set_is_sound(
        seed in 0u64..10_000,
        n_places in 2usize..48,
        n_regs in 1usize..9,
        xs in prop::collection::vec(-8i64..8, 1usize..48),
    ) {
        let g = etpn_workloads::random_design(seed, n_places, n_regs);
        let env = ScriptedEnv::new().with_stream("x", xs.clone());
        let verified = Simulator::new(&g, env).compiled_verified().run(300);
        let env = ScriptedEnv::new().with_stream("x", xs);
        let interp = Simulator::new(&g, env).run(300);
        prop_assert_eq!(format!("{verified:?}"), format!("{interp:?}"));
    }

    /// The compile table is a faithful image of the design: replaying it
    /// through the builder (decompile) reproduces the exact fingerprint
    /// that keys the global compile cache.
    #[test]
    fn compile_decompile_preserves_fingerprint(
        seed in 0u64..10_000,
        n_places in 2usize..48,
        n_regs in 1usize..9,
    ) {
        let g = etpn_workloads::random_design(seed, n_places, n_regs);
        let cd = etpn_sim::CompiledDesign::compile(&g);
        let back = cd.decompile().expect("spec tables replay");
        prop_assert_eq!(back.fingerprint(), g.fingerprint());

        let net = etpn_workloads::random_net(seed, n_places.max(4));
        let cd = etpn_sim::CompiledDesign::compile(&net);
        let back = cd.decompile().expect("spec tables replay");
        prop_assert_eq!(back.fingerprint(), net.fingerprint());
    }
}
