//! Integration tests for semantics preservation across *mixed*
//! transformation sequences — interleaved data-invariant and
//! control-invariant rewrites on the real benchmark designs, checked
//! against the representative inputs (exact output equality) and the
//! randomized oracle.

use etpn_bench::seqgen::{random_sequence, Family};
use etpn_sim::Simulator;
use etpn_transform::{semantic_oracle, OracleConfig, OracleVerdict};
use etpn_workloads::catalog;

fn outputs(
    w: &etpn_workloads::Workload,
    g: &etpn_core::Etpn,
    inits: &[(String, i64)],
) -> Vec<(String, Vec<i64>)> {
    let mut sim = Simulator::new(g, w.env());
    for (n, v) in inits {
        sim = sim.init_register(n, *v);
    }
    let trace = sim.run(w.max_steps).unwrap();
    w.program()
        .outputs
        .iter()
        .map(|o| (o.clone(), trace.values_on_named_output(g, o)))
        .collect()
}

#[test]
fn mixed_sequences_preserve_outputs_on_all_workloads() {
    for w in catalog() {
        let d = etpn_synth::compile_source(&w.source).unwrap();
        let reference = outputs(&w, &d.etpn, &d.reg_inits);
        for seed in 0..3u64 {
            let (g2, applied) = random_sequence(&d.etpn, Family::Mixed, seed, 10);
            let got = outputs(&w, &g2, &d.reg_inits);
            assert_eq!(
                got, reference,
                "{} seed {seed}: outputs changed after {applied:?}",
                w.name
            );
            // The transformed design stays properly designed.
            let report = etpn_analysis::check_properly_designed(&g2);
            assert!(
                report.is_proper(),
                "{} seed {seed}: {}",
                w.name,
                report.summary()
            );
        }
    }
}

#[test]
fn mixed_sequences_survive_the_oracle_on_diffeq() {
    let w = etpn_workloads::by_name("diffeq").unwrap();
    let g0 = etpn_synth::compile_source(&w.source).unwrap().etpn;
    for seed in 0..2u64 {
        let (g2, applied) = random_sequence(&g0, Family::Mixed, seed, 8);
        let cfg = OracleConfig {
            environments: 4,
            stream_len: 4,
            policy_seeds: 1,
            max_steps: 20_000,
            value_min: -16,
            value_max: 16,
            threads: 0,
        };
        match semantic_oracle(&g0, &g2, cfg) {
            OracleVerdict::NoCounterexample { .. } => {}
            other => panic!("seed {seed}, after {applied:?}: {other:?}"),
        }
    }
}

#[test]
fn optimizer_composes_with_manual_transforms() {
    // Run the optimiser, then keep rewriting by hand: the provenance log
    // must replay, and semantics must hold end to end.
    let w = etpn_workloads::by_name("ar_lattice").unwrap();
    let d = etpn_synth::compile_source(&w.source).unwrap();
    let reference = outputs(&w, &d.etpn, &d.reg_inits);
    let lib = etpn_synth::ModuleLibrary::standard();
    let mut rw = etpn_transform::Rewriter::new(d.etpn.clone());
    etpn_synth::Optimizer::new(lib, etpn_synth::Objective::Balanced)
        .with_budget(400)
        .optimize(&mut rw);
    let (g2, _) = random_sequence(rw.design(), Family::Mixed, 9, 5);
    assert_eq!(outputs(&w, &g2, &d.reg_inits), reference);
    assert!(rw.replay_matches().unwrap());
}
