//! Golden external event structures of the compiled backend.
//!
//! Each test runs a catalogue workload on the **compiled** step engine and
//! compares a textual digest of its external event structure (Def. 3.4/3.5:
//! per-arc value sequences plus the `≺`/`≍` relations) byte-for-byte
//! against the checked-in file under `tests/golden/es/`. Because the
//! differential battery separately proves compiled ≡ interp, these files
//! pin the *absolute* observable behaviour of both engines. Regenerate
//! after an intentional semantic change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_es
//! ```

use etpn_core::StableHasher;
use etpn_sim::Simulator;
use etpn_workloads::by_name;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/es")
        .join(format!("{name}.txt"))
}

/// Render the event structure of a compiled-backend run as a stable,
/// human-diffable digest document.
fn digest(name: &str) -> String {
    let w = by_name(name).unwrap_or_else(|| panic!("workload `{name}` not in catalog"));
    let d = etpn_synth::compile_source(&w.source).expect("workload compiles");
    let mut sim = Simulator::new(&d.etpn, w.env()).compiled();
    for (n, v) in &d.reg_inits {
        sim = sim.init_register(n, *v);
    }
    let trace = sim.run(w.max_steps).expect("workload simulates");
    let es = etpn_sim::event_structure(&d.etpn, &trace);

    let mut out = String::new();
    let _ = writeln!(out, "design {:#018x}", d.etpn.fingerprint());
    let _ = writeln!(out, "termination {:?}", trace.termination);
    let _ = writeln!(out, "steps {} firings {}", trace.steps, trace.firings);
    for (arc, values) in &es.events {
        let _ = writeln!(out, "arc {arc} {values:?}");
    }
    let _ = writeln!(out, "precedent {}", es.precedent.len());
    let _ = writeln!(out, "concurrent {}", es.concurrent.len());
    // One word that covers the relations in full (they are too large to
    // list) — any reordering or membership change flips it.
    let mut h = StableHasher::new();
    h.write_str(&format!("{:?}{:?}", es.precedent, es.concurrent));
    let _ = writeln!(out, "relations {:#018x}", h.finish());
    out
}

fn check_golden(name: &str) {
    let rendered = digest(name);
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        rendered == golden,
        "compiled-backend event structure for `{name}` drifted from {}; \
         run with UPDATE_GOLDEN=1 if the change is intentional.\n\
         rendered:\n{rendered}",
        path.display()
    );
}

#[test]
fn gcd_event_structure_matches_golden() {
    check_golden("gcd");
}

#[test]
fn diffeq_event_structure_matches_golden() {
    check_golden("diffeq");
}
