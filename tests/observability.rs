//! Observability integration tests: metric consistency under a concurrent
//! fleet batch, and the Chrome `trace_event` exporter's schema.
//!
//! The observability level and the registry are process-wide, so every
//! test here serialises on [`GLOBAL_LOCK`] (this file is its own test
//! binary — no other test shares the process).

use etpn::obs;
use etpn::sim::{Fleet, ScriptedEnv, SimJob};
use std::sync::Mutex;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

const GCD_SRC: &str = "design gcd {
    in a, b;
    out g;
    reg x, y;
    x = a;
    y = b;
    while (x != y) {
        if (x > y) {
            x = x - y;
        } else {
            y = y - x;
        }
    }
    g = x;
}";

fn gcd_jobs(n: usize) -> (etpn::synth::CompiledDesign, Vec<(i64, i64)>) {
    let d = etpn::synth::compile_source(GCD_SRC).expect("gcd compiles");
    let pairs = (0..n as i64).map(|i| (90 + 6 * i, 36 + 4 * i)).collect();
    (d, pairs)
}

fn run_batch(
    d: &etpn::synth::CompiledDesign,
    pairs: &[(i64, i64)],
    workers: usize,
) -> etpn::sim::FleetBatch {
    let jobs: Vec<SimJob> = pairs
        .iter()
        .map(|&(a, b)| {
            let env = ScriptedEnv::new()
                .with_stream("a", [a])
                .with_stream("b", [b]);
            let mut job = SimJob::new(&d.etpn, env).max_steps(5_000);
            for (name, v) in &d.reg_inits {
                job = job.init_register(name, *v);
            }
            job
        })
        .collect();
    Fleet::new(workers).run_batch(jobs)
}

fn counter(reg: &obs::Registry, name: &str) -> u64 {
    reg.counter(name).get()
}

/// The engine-side cache counters must agree exactly with the cache's own
/// bookkeeping: every lookup is counted once, as either a hit or a miss.
#[test]
fn fleet_cache_metrics_are_consistent() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    let (d, pairs) = gcd_jobs(8);
    let reg = obs::global();
    let hits0 = counter(reg, "sim.cache.hits");
    let misses0 = counter(reg, "sim.cache.misses");
    let done0 = counter(reg, "fleet.jobs_done");

    let batch = run_batch(&d, &pairs, 4);

    let stats = &batch.stats;
    assert_eq!(stats.jobs, 8);
    assert!(batch.results.iter().all(|r| r.is_ok()));
    // hits + misses == lookups, by construction of the cache *and* of the
    // engine's call-site counters.
    assert_eq!(stats.cache.hits + stats.cache.misses, stats.cache.lookups());
    let d_hits = counter(reg, "sim.cache.hits") - hits0;
    let d_misses = counter(reg, "sim.cache.misses") - misses0;
    assert_eq!(
        d_hits, stats.cache.hits,
        "engine hit counter tracks the cache"
    );
    assert_eq!(
        d_misses, stats.cache.misses,
        "engine miss counter tracks the cache"
    );
    assert_eq!(counter(reg, "fleet.jobs_done") - done0, 8);
    // FleetStats is re-exported through the registry as gauges.
    let gauges = reg.gauge_values();
    let gauge = |name: &str| {
        gauges
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
            .1
    };
    assert_eq!(gauge("fleet.jobs"), 8);
    assert_eq!(gauge("fleet.cache.hits"), stats.cache.hits as i64);
    assert_eq!(gauge("fleet.cache.misses"), stats.cache.misses as i64);
}

/// Under `Level::Trace`, every job and every worker of a batch shows up as
/// a span, and job spans run on worker threads: the per-worker totals sum
/// to the batch's job count.
#[test]
fn fleet_spans_account_for_every_job() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    obs::set_level(obs::Level::Trace);
    obs::global().clear_events();
    let (d, pairs) = gcd_jobs(9);
    let workers = 3;
    let batch = run_batch(&d, &pairs, workers);
    obs::set_level(obs::Level::Off);
    obs::flush_thread();

    assert_eq!(batch.stats.jobs, 9);
    let spans = obs::global().spans();
    let batch_span = spans
        .iter()
        .find(|s| s.name == "fleet.batch")
        .expect("batch span recorded");
    assert_eq!(batch_span.arg, Some(("jobs", 9)));

    let worker_tids: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "fleet.worker")
        .map(|s| s.tid)
        .collect();
    assert_eq!(worker_tids.len(), workers, "one span per worker");

    let job_spans: Vec<_> = spans.iter().filter(|s| s.name == "fleet.job").collect();
    assert_eq!(job_spans.len(), 9, "one span per job");
    for js in &job_spans {
        assert!(
            worker_tids.contains(&js.tid),
            "job span on a worker thread (tid {})",
            js.tid
        );
    }
    // Per-worker totals partition the batch.
    let total: usize = worker_tids
        .iter()
        .map(|&tid| job_spans.iter().filter(|js| js.tid == tid).count())
        .sum();
    assert_eq!(total, 9);
    // Every job span nests inside its worker's span.
    for js in &job_spans {
        let w = spans
            .iter()
            .find(|s| s.name == "fleet.worker" && s.tid == js.tid)
            .expect("owning worker span");
        assert!(js.start_ns >= w.start_ns);
        assert!(js.start_ns + js.dur_ns <= w.start_ns + w.dur_ns);
    }
}

/// Golden schema test: the Chrome-trace exporter emits JSON that the
/// repo's own (float-free) parser accepts, with the fields Perfetto /
/// `chrome://tracing` require on every event.
#[test]
fn chrome_trace_schema_is_valid() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    obs::set_level(obs::Level::Trace);
    obs::global().clear_events();
    let (d, pairs) = gcd_jobs(3);
    let _ = run_batch(&d, &pairs, 2);
    obs::sample("test.series", 42);
    obs::set_level(obs::Level::Off);
    obs::flush_thread();

    let text = obs::chrome_trace(obs::global());
    let doc = etpn::core::json::parse(&text).expect("exporter output parses");
    let events = doc
        .req("traceEvents")
        .expect("traceEvents present")
        .as_arr()
        .expect("traceEvents is an array");
    assert!(!events.is_empty());

    let mut phases = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.req("ph").unwrap().as_str().unwrap();
        phases.insert(ph.to_string());
        assert!(ev.req("name").unwrap().as_str().is_ok());
        assert!(ev.req("pid").unwrap().as_i64().is_ok());
        assert!(ev.req("tid").unwrap().as_i64().is_ok());
        match ph {
            "X" => {
                // Complete events: integer microsecond timestamp + duration.
                assert!(ev.req("ts").unwrap().as_i64().unwrap() >= 0);
                assert!(ev.req("dur").unwrap().as_i64().unwrap() >= 0);
                assert!(ev.req("cat").unwrap().as_str().is_ok());
            }
            "C" => {
                assert!(ev.req("ts").unwrap().as_i64().unwrap() >= 0);
                let args = ev.req("args").unwrap();
                assert!(args.get("value").is_some());
            }
            "M" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(phases.contains("X"), "span events present");
    assert!(phases.contains("M"), "metadata event present");
    assert!(phases.contains("C"), "counter sample present");

    // The step/eval/fire span hierarchy the README promises is in there.
    for name in ["sim.step", "sim.eval", "sim.fire", "fleet.batch"] {
        assert!(
            events
                .iter()
                .any(|e| e.req("name").unwrap().as_str().unwrap() == name),
            "span {name} missing from the trace"
        );
    }
}
