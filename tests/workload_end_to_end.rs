//! End-to-end cross-validation: for every benchmark in the catalogue, the
//! ETPN simulation of the compiled design must reproduce the outputs of the
//! independent AST interpreter — before *and after* optimisation under
//! every objective. This is the workhorse correctness test of the whole
//! stack (front-end → compiler → model → simulator → transformations).

use etpn_analysis::proper::check_properly_designed;
use etpn_core::Etpn;
use etpn_sim::{Simulator, Termination};
use etpn_synth::{synthesize, ModuleLibrary, Objective};
use etpn_workloads::{catalog, Workload};

fn simulate_outputs(
    w: &Workload,
    g: &Etpn,
    reg_inits: &[(String, i64)],
) -> Vec<(String, Vec<i64>)> {
    let mut sim = Simulator::new(g, w.env());
    for (name, v) in reg_inits {
        sim = sim.init_register(name, *v);
    }
    let trace = sim
        .run(w.max_steps)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    assert_eq!(
        trace.termination,
        Termination::Terminated,
        "{} must terminate",
        w.name
    );
    w.program()
        .outputs
        .iter()
        .map(|o| (o.clone(), trace.values_on_named_output(g, o)))
        .collect()
}

#[test]
fn every_workload_compiles_properly() {
    for w in catalog() {
        let d = etpn_synth::compile_source(&w.source).unwrap();
        let report = check_properly_designed(&d.etpn);
        assert!(report.is_proper(), "{}: {}", w.name, report.summary());
    }
}

#[test]
fn simulation_matches_interpreter_for_every_workload() {
    for w in catalog() {
        let d = etpn_synth::compile_source(&w.source).unwrap();
        let expected = w.expected();
        for (name, values) in simulate_outputs(&w, &d.etpn, &d.reg_inits) {
            assert_eq!(
                values, expected[&name],
                "{}: output `{name}` diverges from the reference interpreter",
                w.name
            );
        }
    }
}

#[test]
fn optimized_designs_still_match_interpreter() {
    let lib = ModuleLibrary::standard();
    for w in catalog() {
        let expected = w.expected();
        for objective in [
            Objective::MinDelay { max_area: None },
            Objective::MinArea { max_latency: None },
            Objective::Balanced,
        ] {
            let res = synthesize(&w.source, objective, &lib)
                .unwrap_or_else(|e| panic!("{} under {objective:?}: {e}", w.name));
            for (name, values) in simulate_outputs(&w, &res.optimized, &res.compiled.reg_inits) {
                assert_eq!(
                    values, expected[&name],
                    "{} under {objective:?}: output `{name}` changed",
                    w.name
                );
            }
        }
    }
}

#[test]
fn representative_inputs_fully_cover_the_control() {
    // Every state and transition of each benchmark fires under its
    // representative inputs (dead control would mean the workload does not
    // exercise its own specification).
    for w in catalog() {
        let d = etpn_synth::compile_source(&w.source).unwrap();
        let mut sim = Simulator::new(&d.etpn, w.env());
        for (n, v) in &d.reg_inits {
            sim = sim.init_register(n, *v);
        }
        let trace = sim.run(w.max_steps).unwrap();
        let cov = etpn_sim::coverage(&d.etpn, &trace);
        assert!(
            cov.is_complete(),
            "{}: {:?} {:?}",
            w.name,
            cov.unvisited_places,
            cov.unfired_transitions
        );
    }
}

#[test]
fn optimization_improves_its_objective_on_the_filters() {
    let lib = ModuleLibrary::standard();
    for name in ["ewf", "fir16", "ar_lattice"] {
        let w = etpn_workloads::by_name(name).unwrap();
        let fast = synthesize(&w.source, Objective::MinDelay { max_area: None }, &lib).unwrap();
        assert!(
            fast.final_cost.latency_bound < fast.initial_cost.latency_bound,
            "{name}: min-delay should shorten the latency bound \
             ({} → {})",
            fast.initial_cost.latency_bound,
            fast.final_cost.latency_bound
        );
        let small = synthesize(&w.source, Objective::MinArea { max_latency: None }, &lib).unwrap();
        assert!(
            small.final_cost.total_area < small.initial_cost.total_area,
            "{name}: min-area should shrink the area \
             ({} → {})",
            small.initial_cost.total_area,
            small.final_cost.total_area
        );
    }
}
