//! Integration tests for the functional-coverage subsystem: worker-count
//! invariance of merged fleet coverage, saturation convergence, campaign
//! coverage, and the byte-stable golden VCD of the GCD example.

use etpn_cov::{report, CovDb, StaticDead};
use etpn_sim::{vcd, FiringPolicy, Fleet, SaturationConfig, ScriptedEnv, SimJob, Simulator};
use etpn_synth::CompiledDesign;

const GCD_SRC: &str = include_str!("../examples/gcd.hdl");

fn gcd() -> CompiledDesign {
    etpn_synth::compile_source(GCD_SRC).unwrap()
}

fn gcd_env(a: i64, b: i64) -> ScriptedEnv {
    ScriptedEnv::new()
        .with_stream("a", [a])
        .with_stream("b", [b])
}

/// The seed → policy mapping `etpnc cov` uses.
fn policy_of(seed: u64) -> FiringPolicy {
    match seed {
        0 => FiringPolicy::MaximalStep,
        s if s % 2 == 1 => FiringPolicy::RandomMaximal { seed: s },
        s => FiringPolicy::SingleRandom { seed: s },
    }
}

fn seed_jobs(d: &CompiledDesign, seeds: std::ops::Range<u64>) -> Vec<SimJob<'_>> {
    seeds
        .map(|seed| {
            SimJob::new(&d.etpn, gcd_env(3528, 3780))
                .with_policy(policy_of(seed))
                .max_steps(5_000)
                .with_coverage()
        })
        .collect()
}

#[test]
fn merged_fleet_coverage_is_bit_identical_across_worker_counts() {
    let d = gcd();
    let merged: Vec<CovDb> = [1usize, 4, 8]
        .into_iter()
        .map(|workers| {
            Fleet::new(workers)
                .run_batch(seed_jobs(&d, 0..12))
                .coverage
                .expect("coverage-enabled jobs produce a merged DB")
        })
        .collect();
    // CovDb derives Eq: counters and bitsets must match word for word.
    assert_eq!(merged[0], merged[1], "1 vs 4 workers");
    assert_eq!(merged[1], merged[2], "4 vs 8 workers");
    assert_eq!(merged[0].runs, 12);
    assert_eq!(merged[0].signature(), merged[2].signature());
}

#[test]
fn merged_coverage_is_the_union_of_per_job_coverage() {
    let d = gcd();
    let batch = Fleet::new(4).run_batch(seed_jobs(&d, 0..6));
    let mut manual: Option<CovDb> = None;
    for trace in batch.results.iter().flatten() {
        let db = trace.cov.as_ref().expect("job collected coverage");
        match &mut manual {
            None => manual = Some(db.clone()),
            Some(acc) => acc.merge(db).unwrap(),
        }
    }
    assert_eq!(batch.coverage, manual);
}

#[test]
fn saturation_converges_and_covers_gcd_completely() {
    let d = gcd();
    let cfg = SaturationConfig {
        batch_size: 8,
        stable_batches: 3,
        max_batches: 64,
    };
    let outcome = Fleet::new(4).run_saturation(
        |seed| {
            SimJob::new(&d.etpn, gcd_env(3528, 3780))
                .with_policy(policy_of(seed))
                .max_steps(5_000)
        },
        cfg,
    );
    assert!(outcome.saturated, "gcd saturates well inside 64 batches");
    assert_eq!(outcome.failures, 0);
    assert_eq!(outcome.seeds_used.len() as u64, outcome.jobs);
    let db = outcome.coverage.expect("coverage collected");
    let (dead_p, dead_t) = etpn_lint::statically_dead(&d.etpn.ctl);
    let rep = report(
        &d.etpn,
        &db,
        &StaticDead::from_ids(&d.etpn, &dead_p, &dead_t),
    );
    assert_eq!(rep.places.pct(), 100.0, "{}", rep.text());
    assert_eq!(rep.transitions.pct(), 100.0, "{}", rep.text());
    assert_eq!(rep.arcs.pct(), 100.0, "{}", rep.text());
    assert_eq!(rep.guards.pct(), 100.0, "{}", rep.text());
    assert!(rep.meets(90.0));
}

#[test]
fn saturation_is_reproducible() {
    let d = gcd();
    let cfg = SaturationConfig {
        batch_size: 4,
        stable_batches: 2,
        max_batches: 32,
    };
    let run = || {
        Fleet::new(2).run_saturation(
            |seed| {
                SimJob::new(&d.etpn, gcd_env(12, 18))
                    .with_policy(policy_of(seed))
                    .max_steps(5_000)
            },
            cfg,
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.seeds_used, b.seeds_used);
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.batches, b.batches);
}

#[test]
fn fault_campaign_merges_golden_and_faulty_coverage() {
    use etpn_sim::{run_campaign, CampaignConfig, FaultKind};
    let d = gcd();
    let proto = SimJob::new(&d.etpn, gcd_env(12, 18)).max_steps(2_000);
    let cfg = CampaignConfig {
        kinds: vec![FaultKind::StuckAt0],
        workers: 4,
        coverage: true,
        wall_budget: Some(std::time::Duration::from_secs(5)),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&proto, &cfg).unwrap();
    let db = report.coverage.as_ref().expect("campaign coverage on");
    // Golden run + one faulty job per outcome, all merged.
    assert_eq!(db.runs, report.outcomes.len() as u64 + 1);
    assert!(report.golden_unchanged);
    // Without the flag no coverage is collected.
    let cfg_off = CampaignConfig {
        kinds: vec![FaultKind::StuckAt0],
        workers: 4,
        ..CampaignConfig::default()
    };
    assert!(run_campaign(&proto, &cfg_off).unwrap().coverage.is_none());
}

#[test]
fn gcd_vcd_matches_golden_file() {
    let d = gcd();
    let trace = Simulator::new(&d.etpn, gcd_env(12, 18))
        .watch_registers()
        .watch_control()
        .run(100_000)
        .unwrap();
    let vcd = vcd::render(&d.etpn, &trace).expect("waveform captured");
    let golden = include_str!("golden/vcd/gcd.vcd");
    assert_eq!(
        vcd, golden,
        "VCD output drifted from tests/golden/vcd/gcd.vcd; if the change is \
         intentional, regenerate with: etpnc run examples/gcd.hdl \
         --set a=12 --set b=18 --vcd tests/golden/vcd/gcd.vcd"
    );
}
