//! `etpnc` — the command-line driver for the ETPN synthesis flow.
//!
//! ```text
//! etpnc check  <design.hdl> [options]            # whole-design static verifier
//! etpnc build  <design.hdl> [options]            # full synthesis → files
//! etpnc run    <design.hdl> --set x=1,2 [...]    # simulate on the model
//! etpnc interp <design.hdl> --set x=1,2 [...]    # reference interpreter
//! etpnc fault  <design.hdl> --set x=1,2 [...]    # fault-injection campaign
//! etpnc cov    <design.hdl> --set x=1,2 [...]    # drive to coverage saturation
//! etpnc dot    <design.hdl>                      # graphviz to stdout
//!
//! check options:
//!   --format text|json|sarif                  (diagnostic rendering, default
//!                                              text; json is one object per
//!                                              line, sarif is a SARIF 2.1.0
//!                                              document)
//!   --deny warnings                           (warnings also fail the run)
//!   --allow CODE                              (suppress a diagnostic code,
//!                                              repeatable, e.g. --allow W308)
//!   --max-states N                            (marking budget for the
//!                                              reachability-backed lints;
//!                                              exhaustion degrades to W390)
//! build options:
//!   --objective min-delay|min-area|balanced   (default balanced)
//!   --max-area N | --max-latency N            (constraint for the objective)
//!   --grade standard|fast|small               (module library speed grade)
//!   -o DIR                                    (output directory, default .)
//! run options:
//!   --set NAME=v1,v2,…                        (input stream, repeatable)
//!   --steps N                                 (budget, default 100000)
//!   --backend interp|compiled|compiled-nodirty
//!                                             (step engine, default interp;
//!                                              `compiled` runs the
//!                                              event-driven compiled engine —
//!                                              bit-identical, see
//!                                              tests/backend_differential.rs —
//!                                              and `compiled-nodirty` its
//!                                              full-re-evaluation ablation)
//!   --vcd FILE                                (dump register waveforms)
//!   --cov                                     (collect functional coverage and
//!                                              print the full report;
//!                                              --coverage is an alias)
//!   --jobs N                                  (batch a policy battery over N
//!                                              fleet workers, report cache
//!                                              stats and policy invariance)
//!   --seeds K                                 (battery seeds, default 4)
//!   --wall-ms N                               (per-run wall-clock budget)
//!   --strict                                  (error when an input stream
//!                                              runs dry instead of reading ⊥)
//! fault options (plus --set/--steps/--jobs/--wall-ms as for run):
//!   --control                                 (also inject token loss/dup
//!                                              faults into control places)
//!   --at N                                    (step for transient bit-flips,
//!                                              default 1)
//!   --retries N                               (per-job retry budget,
//!                                              default 1)
//!   --dot FILE                                (write the silent-corruption
//!                                              vulnerability map as a heat
//!                                              DOT of the data path)
//!   --cov                                     (merge functional coverage over
//!                                              the golden run and every
//!                                              faulty job)
//! cov options (plus --set/--steps/--strict as for run):
//!   --jobs N                                  (fleet workers, default all CPUs)
//!   --batch K                                 (seeds per batch, default 8)
//!   --stable K                                (stop after K batches with no
//!                                              new coverage, default 3)
//!   --max-batches N                           (hard cap, default 64)
//!   --json FILE                               (write the report as JSON)
//!   --lcov FILE                               (write an lcov-style tracefile
//!                                              mapped onto the .hdl source)
//!   --dot FILE                                (coverage-annotated control-net
//!                                              heat overlay)
//!   --fail-under PCT                          (exit 6 unless place AND
//!                                              transition coverage ≥ PCT;
//!                                              statically-dead items are
//!                                              excluded from denominators)
//! dot options:
//!   --heat                                    (simulate with the --set
//!                                              streams and colour the control
//!                                              net by activation/firing
//!                                              counts)
//! observability (run, build, interp):
//!   --profile FILE.json                       (write a Chrome trace_event
//!                                              profile; open in
//!                                              chrome://tracing or Perfetto)
//!   --stats                                   (dump counters/gauges/
//!                                              histograms after the command)
//!
//! exit codes:
//!   0   success
//!   1   error (bad usage, compile failure, simulation fault, …)
//!   2   check found denied diagnostics (errors, or warnings under --deny)
//!   3   simulation hit the step limit
//!   4   deadlock: no transition is token-enabled but tokens remain
//!   5   wall-clock budget exhausted
//!   6   coverage below the --fail-under gate
//! ```

use etpn::analysis::proper::check_properly_designed;
use etpn::core::dot;
use etpn::obs;
use etpn::sim::{ScriptedEnv, Simulator, Termination};
use etpn::synth::{synthesize, Grade, ModuleLibrary, Objective};
use std::process::ExitCode;

/// Exit code for `check` reporting diagnostics that fail the run: errors
/// always, warnings under `--deny warnings` (distinct from generic
/// failure, `1`, so scripts can tell "design has findings" from "the tool
/// itself broke").
const EXIT_FINDINGS: u8 = 2;
/// Exit code for a run that stopped on the step budget instead of
/// terminating or quiescing (distinct from generic failure, `1`).
const EXIT_STEP_LIMIT: u8 = 3;
/// Exit code for a control-net deadlock: tokens remain but no transition
/// is token-enabled, so no budget increase can ever help.
const EXIT_DEADLOCK: u8 = 4;
/// Exit code for a run cut short by the `--wall-ms` wall-clock budget.
const EXIT_BUDGET: u8 = 5;
/// Exit code for `cov --fail-under`: the design simulated fine but place
/// or transition coverage stayed below the gate.
const EXIT_COVERAGE: u8 = 6;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: etpnc <check|build|run|interp|fault|cov|dot> <design.hdl> [options]");
        return ExitCode::FAILURE;
    };
    let profile_path = flag_value(rest, "--profile").map(str::to_string);
    let want_stats = rest.iter().any(|a| a == "--stats");
    if profile_path.is_some() {
        obs::set_level(obs::Level::Trace);
    } else if want_stats {
        obs::set_level(obs::Level::Stats);
    }
    let result = match cmd.as_str() {
        "check" => cmd_check(rest),
        "build" => cmd_build(rest),
        "run" => cmd_run(rest, false),
        "interp" => cmd_run(rest, true),
        "fault" => cmd_fault(rest),
        "cov" => cmd_cov(rest),
        "dot" => cmd_dot(rest),
        other => Err(format!("unknown command `{other}`")),
    };
    // Export observability before deciding the exit status so that even a
    // failed or truncated run leaves its profile behind.
    let obs_result = export_observability(profile_path.as_deref(), want_stats);
    match (result, obs_result) {
        (Ok(code), Ok(())) => code,
        (Ok(_), Err(e)) | (Err(e), _) => {
            eprintln!("etpnc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn export_observability(profile_path: Option<&str>, want_stats: bool) -> Result<(), String> {
    if profile_path.is_none() && !want_stats {
        return Ok(());
    }
    obs::flush_thread();
    let reg = obs::global();
    if let Some(path) = profile_path {
        std::fs::write(path, obs::chrome_trace(reg)).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path} ({} spans)", reg.spans().len());
    }
    if want_stats {
        print!("{}", obs::stats_text(reg));
    }
    Ok(())
}

fn read_source(args: &[String]) -> Result<(String, String), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or("missing design file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok((path.clone(), src))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Every value of a repeatable flag, accepting both `--flag v` and
/// `--flag=v` spellings.
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let prefix = format!("{flag}=");
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
            i += 2;
        } else {
            if let Some(v) = args[i].strip_prefix(&prefix) {
                out.push(v.to_string());
            }
            i += 1;
        }
    }
    out
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    use etpn::lint::render::{render, Format};
    use etpn::lint::{lang_diagnostic, lint_compiled, LintConfig, Severity};

    let (path, src) = read_source(args)?;
    let format: Format = flag_values(args, "--format")
        .last()
        .map_or("text", String::as_str)
        .parse()?;
    let deny_warnings = match flag_values(args, "--deny").last().map(String::as_str) {
        None => false,
        Some("warnings") => true,
        Some(other) => return Err(format!("--deny {other}: only `warnings` can be denied")),
    };
    let allow = flag_values(args, "--allow");
    for code in &allow {
        if etpn::lint::lookup(code).is_none() {
            return Err(format!("--allow {code}: unknown diagnostic code"));
        }
    }
    let mut cfg = LintConfig {
        allow,
        ..LintConfig::default()
    };
    if let Some(n) = flag_values(args, "--max-states").last() {
        cfg.max_states = n.parse().map_err(|e| format!("--max-states: {e}"))?;
    }

    let emit = |diags: &[etpn::lint::Diagnostic]| {
        let out = render(format, diags, &path, &src);
        print!("{out}");
        if !out.is_empty() && !out.ends_with('\n') {
            println!();
        }
    };

    // Front-end failures flow through the same renderers as lint findings.
    let prog = match etpn::lang::parse_and_check(&src) {
        Ok(prog) => prog,
        Err(e) => {
            emit(&[lang_diagnostic(&e)]);
            if format == Format::Text {
                println!("check: 1 error, 0 warnings, 0 notes");
            }
            return Ok(ExitCode::from(EXIT_FINDINGS));
        }
    };
    let d = etpn::synth::compile(&prog).map_err(|e| e.to_string())?;
    if format == Format::Text {
        let (v, p, a, s, t) = d.etpn.size();
        println!(
            "design `{}`: {v} vertices, {p} ports, {a} arcs, {s} states, {t} transitions",
            d.name
        );
    }
    let report = lint_compiled(&d, &cfg);
    emit(&report.diagnostics);
    if format == Format::Text {
        let (errors, warnings, notes) = report.counts();
        println!("check: {errors} errors, {warnings} warnings, {notes} notes");
        if errors > 0 {
            println!("design is NOT properly designed (Def. 3.2)");
        } else if report
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Warning)
        {
            println!("design is properly designed (Def. 3.2), with lint warnings");
        } else {
            println!("design is properly designed (Def. 3.2)");
        }
    }
    if report.has_denied(deny_warnings) {
        Ok(ExitCode::from(EXIT_FINDINGS))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_build(args: &[String]) -> Result<ExitCode, String> {
    let (_, src) = read_source(args)?;
    let objective = match flag_value(args, "--objective").unwrap_or("balanced") {
        "min-delay" => Objective::MinDelay {
            max_area: flag_value(args, "--max-area")
                .map(|v| v.parse().map_err(|e| format!("--max-area: {e}")))
                .transpose()?,
        },
        "min-area" => Objective::MinArea {
            max_latency: flag_value(args, "--max-latency")
                .map(|v| v.parse().map_err(|e| format!("--max-latency: {e}")))
                .transpose()?,
        },
        "balanced" => Objective::Balanced,
        other => return Err(format!("unknown objective `{other}`")),
    };
    let grade = match flag_value(args, "--grade").unwrap_or("standard") {
        "standard" => Grade::Standard,
        "fast" => Grade::Fast,
        "small" => Grade::Small,
        other => return Err(format!("unknown grade `{other}`")),
    };
    let outdir = flag_value(args, "-o").unwrap_or(".");
    std::fs::create_dir_all(outdir).map_err(|e| format!("creating {outdir}: {e}"))?;

    let lib = ModuleLibrary::with_grade(grade);
    let res = synthesize(&src, objective, &lib).map_err(|e| e.to_string())?;

    let write = |name: &str, contents: &str| -> Result<(), String> {
        let path = format!("{outdir}/{}.{name}", res.compiled.name);
        std::fs::write(&path, contents).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
        Ok(())
    };
    write("netlist.txt", &res.netlist)?;
    write(
        "v",
        &etpn::synth::verilog(&res.optimized, &lib, &res.compiled.name),
    )?;
    write("binding.txt", &res.binding.render())?;
    write("datapath.dot", &dot::datapath_dot(&res.optimized))?;
    write("control.dot", &dot::control_dot(&res.optimized))?;
    let mut report = String::new();
    report.push_str(&format!(
        "objective: {objective:?}\ninitial: {:?}\nfinal:   {:?}\nspeedup: {:.2}x  area: {:.2}x\n\ntransformations:\n",
        res.initial_cost,
        res.final_cost,
        res.optimizer.speedup(),
        res.optimizer.area_reduction()
    ));
    for t in &res.transform_log {
        report.push_str(&format!("  {t}\n"));
    }
    write("report.txt", &report)?;
    println!(
        "synthesis: area {}→{}, latency bound {}→{}, {} transformations",
        res.initial_cost.total_area,
        res.final_cost.total_area,
        res.initial_cost.latency_bound,
        res.final_cost.latency_bound,
        res.transform_log.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn parse_streams(args: &[String]) -> Result<Vec<(String, Vec<i64>)>, String> {
    let mut streams = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--set" {
            let spec = args.get(i + 1).ok_or("--set needs NAME=v1,v2,…")?;
            let (name, values) = spec
                .split_once('=')
                .ok_or_else(|| format!("bad --set `{spec}`"))?;
            let values: Vec<i64> = values
                .split(',')
                .map(|v| v.trim().parse().map_err(|e| format!("--set {name}: {e}")))
                .collect::<Result<_, _>>()?;
            streams.push((name.to_string(), values));
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(streams)
}

/// Print how a run ended and map it onto the process exit code.
fn report_termination(trace: &etpn::sim::Trace, steps: u64) -> ExitCode {
    let reason = match trace.termination {
        Termination::Terminated => "all tokens consumed (Def. 3.1(6))".to_string(),
        Termination::Quiescent => "fixpoint: nothing can fire and no input advances".to_string(),
        Termination::Deadlock => {
            "deadlock: tokens remain but no transition is token-enabled".to_string()
        }
        Termination::StepLimit => format!("step budget of {steps} exhausted"),
        Termination::Budget => "wall-clock budget exhausted".to_string(),
    };
    println!(
        "termination: {:?} — {reason}\n{} steps, {} firings, {} external events",
        trace.termination,
        trace.steps,
        trace.firings,
        trace.event_count()
    );
    match trace.termination {
        Termination::StepLimit => {
            eprintln!(
                "etpnc: run hit the step limit (exit {EXIT_STEP_LIMIT}); raise --steps if unintended"
            );
            ExitCode::from(EXIT_STEP_LIMIT)
        }
        Termination::Deadlock => {
            eprintln!(
                "etpnc: control net deadlocked (exit {EXIT_DEADLOCK}); no step budget can unstick it"
            );
            ExitCode::from(EXIT_DEADLOCK)
        }
        Termination::Budget => {
            eprintln!(
                "etpnc: run cut short by the wall-clock budget (exit {EXIT_BUDGET}); raise --wall-ms if unintended"
            );
            ExitCode::from(EXIT_BUDGET)
        }
        Termination::Terminated | Termination::Quiescent => ExitCode::SUCCESS,
    }
}

fn cmd_run(args: &[String], use_interpreter: bool) -> Result<ExitCode, String> {
    let (_, src) = read_source(args)?;
    let streams = parse_streams(args)?;
    let steps: u64 = flag_value(args, "--steps")
        .map(|v| v.parse().map_err(|e| format!("--steps: {e}")))
        .transpose()?
        .unwrap_or(100_000);

    if use_interpreter {
        let _span = obs::span("interp.run");
        let prog = etpn::lang::parse_and_check(&src).map_err(|e| e.to_string())?;
        let out = etpn::workloads::interpret(&prog, &streams).map_err(|e| e.to_string())?;
        for name in &prog.outputs {
            println!("{name} = {:?}", out[name]);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let d = etpn::synth::compile_source(&src).map_err(|e| e.to_string())?;
    let backend = parse_backend(args)?;
    let mut env = ScriptedEnv::new();
    for (name, values) in &streams {
        env = env.with_stream(name, values.iter().copied());
    }
    let jobs: Option<usize> = flag_value(args, "--jobs")
        .map(|v| v.parse().map_err(|e| format!("--jobs: {e}")))
        .transpose()?;
    if let Some(workers) = jobs {
        if flag_value(args, "--vcd").is_some() {
            return Err("--jobs batches don't capture waveforms; drop --vcd".into());
        }
        return run_fleet_battery(args, &d, env, steps, workers, backend);
    }
    let mut sim = Simulator::new(&d.etpn, env).with_backend(backend);
    for (name, v) in &d.reg_inits {
        sim = sim.init_register(name, *v);
    }
    if let Some(ms) = wall_budget(args)? {
        sim = sim.with_wall_budget(ms);
    }
    if args.iter().any(|a| a == "--strict") {
        sim = sim.strict_inputs();
    }
    let vcd_path = flag_value(args, "--vcd");
    if vcd_path.is_some() {
        sim = sim.watch_registers().watch_control();
    }
    let want_cov = want_coverage(args);
    if want_cov {
        sim = sim.with_coverage();
    }
    let trace = sim.run(steps).map_err(|e| e.describe(&d.etpn))?;
    if let Some(path) = vcd_path {
        let vcd = etpn::sim::vcd::render(&d.etpn, &trace).ok_or("nothing captured for the VCD")?;
        std::fs::write(path, vcd).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if want_cov {
        // Statically-dead elements come out of the denominators: a hole in
        // this report is a genuine testing gap, never dead code.
        let (dead_p, dead_t) = etpn::lint::statically_dead(&d.etpn.ctl);
        let cov = etpn::sim::coverage_excluding(&d.etpn, &trace, &dead_p, &dead_t);
        let (ps, ts) = cov.percentages();
        println!(
            "coverage: {ps:.0}% states, {ts:.0}% transitions ({} dead excluded)",
            cov.dead_places + cov.dead_transitions
        );
        for (_, name) in &cov.unvisited_places {
            println!("  never activated: {name}");
        }
        for (_, name) in &cov.unfired_transitions {
            println!("  never fired:     {name}");
        }
        if let Some(db) = &trace.cov {
            print!("{}", full_report(&d.etpn, db, &dead_p, &dead_t).text());
        }
    }
    let code = report_termination(&trace, steps);
    let prog = etpn::lang::parse_and_check(&src).map_err(|e| e.to_string())?;
    for name in &prog.outputs {
        println!("{name} = {:?}", trace.values_on_named_output(&d.etpn, name));
    }
    Ok(code)
}

/// `run --jobs N`: batch the deterministic policy plus seeded sweeps of both
/// randomized policies through a fleet of N workers, check every sweep
/// against the deterministic reference (policy invariance), and report the
/// shared-cache statistics.
fn run_fleet_battery(
    args: &[String],
    d: &etpn::synth::CompiledDesign,
    env: ScriptedEnv,
    steps: u64,
    workers: usize,
    backend: etpn::sim::Backend,
) -> Result<ExitCode, String> {
    use etpn::sim::{compare_structures, event_structure, FiringPolicy, Fleet, SimJob};

    let seeds: u64 = flag_value(args, "--seeds")
        .map(|v| v.parse().map_err(|e| format!("--seeds: {e}")))
        .transpose()?
        .unwrap_or(4);
    let mut policies = vec![FiringPolicy::MaximalStep];
    for seed in 0..seeds {
        policies.push(FiringPolicy::RandomMaximal { seed });
        policies.push(FiringPolicy::SingleRandom { seed });
    }
    let want_cov = want_coverage(args);
    let jobs: Vec<SimJob> = policies
        .iter()
        .map(|&policy| {
            let mut job = SimJob::new(&d.etpn, env.clone())
                .backend(backend)
                .with_policy(policy)
                .max_steps(steps);
            for (name, v) in &d.reg_inits {
                job = job.init_register(name, *v);
            }
            if want_cov {
                job = job.with_coverage();
            }
            job
        })
        .collect();

    let fleet = Fleet::new(workers);
    let batch = fleet.run_batch(jobs);
    let mut results = batch.results.into_iter();
    let reference = results
        .next()
        .expect("battery is non-empty")
        .map_err(|e| format!("job 0 ({:?}): {}", policies[0], e.describe(&d.etpn)))?;
    let ref_structure = event_structure(&d.etpn, &reference);
    let mut divergent = 0usize;
    for (idx, (policy, result)) in policies[1..].iter().zip(results).enumerate() {
        let trace =
            result.map_err(|e| format!("job {} ({policy:?}): {}", idx + 1, e.describe(&d.etpn)))?;
        let verdict = compare_structures(&ref_structure, &event_structure(&d.etpn, &trace));
        if let etpn::sim::EquivalenceVerdict::Different(diff) = verdict {
            divergent += 1;
            println!("policy {policy:?} diverges from MaximalStep: {diff}");
        }
    }
    let stats = &batch.stats;
    println!(
        "fleet: {} jobs on {} workers ({} stolen); cache {} hits / {} misses ({:.1}% hit rate), {} evictions",
        stats.jobs,
        stats.workers,
        stats.stolen,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0,
        stats.cache.evictions,
    );
    if want_cov {
        if let Some(db) = &batch.coverage {
            let (dead_p, dead_t) = etpn::lint::statically_dead(&d.etpn.ctl);
            print!("{}", full_report(&d.etpn, db, &dead_p, &dead_t).text());
        }
    }
    let code = report_termination(&reference, steps);
    for v in d.etpn.dp.output_vertices() {
        let name = &d.etpn.dp.vertex(v).name;
        println!(
            "{name} = {:?}",
            reference.values_on_named_output(&d.etpn, name)
        );
    }
    if divergent == 0 {
        println!(
            "all {} policies agree with the deterministic reference",
            policies.len() - 1
        );
        Ok(code)
    } else {
        Err(format!("{divergent} policies diverged"))
    }
}

/// Parse `--wall-ms N` into a [`std::time::Duration`].
fn wall_budget(args: &[String]) -> Result<Option<std::time::Duration>, String> {
    flag_value(args, "--wall-ms")
        .map(|v| {
            v.parse::<u64>()
                .map(std::time::Duration::from_millis)
                .map_err(|e| format!("--wall-ms: {e}"))
        })
        .transpose()
}

/// `etpnc fault`: run a full single-fault injection campaign against the
/// design — one golden run plus one faulty run per (site, kind) pair — and
/// report the masked / sdc / detected / hang partition, Def. 3.2 detector
/// status, and (optionally) a silent-corruption vulnerability map.
fn cmd_fault(args: &[String]) -> Result<ExitCode, String> {
    use etpn::sim::{run_campaign, CampaignConfig, FaultKind, SimJob};

    let _span = obs::span("fault.cmd");
    let (_, src) = read_source(args)?;
    let d = etpn::synth::compile_source(&src).map_err(|e| e.to_string())?;
    let streams = parse_streams(args)?;
    let steps: u64 = flag_value(args, "--steps")
        .map(|v| v.parse().map_err(|e| format!("--steps: {e}")))
        .transpose()?
        .unwrap_or(100_000);
    let mut env = ScriptedEnv::new();
    for (name, values) in &streams {
        env = env.with_stream(name, values.iter().copied());
    }

    // Def. 3.2 status up front: the `detected` class leans on the runtime
    // monitors, which only mean something when the static analysis passes.
    let proper = check_properly_designed(&d.etpn);
    println!(
        "design `{}`: properly designed: {}",
        d.name,
        if proper.is_proper() { "yes" } else { "NO" }
    );

    let mut proto = SimJob::new(&d.etpn, env).max_steps(steps);
    for (name, v) in &d.reg_inits {
        proto = proto.init_register(name, *v);
    }
    let bit: u32 = flag_value(args, "--bit")
        .map(|v| v.parse().map_err(|e| format!("--bit: {e}")))
        .transpose()?
        .unwrap_or(0);
    let cfg = CampaignConfig {
        kinds: vec![
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::BitFlip(bit),
        ],
        include_control: args.iter().any(|a| a == "--control"),
        transient_step: flag_value(args, "--at")
            .map(|v| v.parse().map_err(|e| format!("--at: {e}")))
            .transpose()?
            .unwrap_or(1),
        workers: flag_value(args, "--jobs")
            .map(|v| v.parse().map_err(|e| format!("--jobs: {e}")))
            .transpose()?
            .unwrap_or(0),
        retries: flag_value(args, "--retries")
            .map(|v| v.parse().map_err(|e| format!("--retries: {e}")))
            .transpose()?
            .unwrap_or(1),
        wall_budget: wall_budget(args)?,
        coverage: want_coverage(args),
    };
    let report = run_campaign(&proto, &cfg).map_err(|e| e.describe(&d.etpn))?;
    print!("{}", report.summary(&d.etpn));
    if let Some(db) = &report.coverage {
        let (dead_p, dead_t) = etpn::lint::statically_dead(&d.etpn.ctl);
        print!("{}", full_report(&d.etpn, db, &dead_p, &dead_t).text());
    }
    if let Some(path) = flag_value(args, "--dot") {
        std::fs::write(path, report.vulnerability_dot(&d.etpn))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path} (silent-corruption vulnerability map)");
    }
    if !report.is_total_partition() {
        return Err("campaign aborted: some faults were never classified".into());
    }
    if !report.golden_unchanged {
        return Err(
            "campaign corrupted the golden run — injection leaked into the clean path".into(),
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Parse `--backend`, defaulting to the interpreter reference engine.
/// (`etpnc run` keeps the reference as its default; the fleet API defaults
/// to the compiled engine, which the differential battery pins to it.)
fn parse_backend(args: &[String]) -> Result<etpn::sim::Backend, String> {
    match flag_values(args, "--backend").last().map(String::as_str) {
        None | Some("interp") => Ok(etpn::sim::Backend::Interp),
        Some("compiled") => Ok(etpn::sim::Backend::Compiled),
        Some("compiled-nodirty") => Ok(etpn::sim::Backend::CompiledNoDirty),
        Some(other) => Err(format!(
            "--backend {other}: expected interp, compiled or compiled-nodirty"
        )),
    }
}

/// `--cov` requests functional coverage; `--coverage` is the historical
/// alias from when `run` only knew place/transition hit counts.
fn want_coverage(args: &[String]) -> bool {
    args.iter().any(|a| a == "--cov" || a == "--coverage")
}

/// The five-dimension coverage report with `etpn-lint`'s statically-dead
/// fixpoint already folded out of the denominators.
fn full_report(
    g: &etpn::core::Etpn,
    db: &etpn::cov::CovDb,
    dead_p: &[etpn::core::PlaceId],
    dead_t: &[etpn::core::TransId],
) -> etpn::cov::CovReport {
    let dead = etpn::cov::StaticDead::from_ids(g, dead_p, dead_t);
    etpn::cov::report(g, db, &dead)
}

/// `etpnc cov`: drive the design to **coverage saturation** — keep drawing
/// policy seeds in batches until consecutive batches stop adding coverage —
/// then report, optionally gate (`--fail-under`, exit 6), and export
/// JSON / lcov / DOT renderings.
fn cmd_cov(args: &[String]) -> Result<ExitCode, String> {
    use etpn::sim::{FiringPolicy, Fleet, SaturationConfig, SimJob};

    let _span = obs::span("cov.cmd");
    let (_, src) = read_source(args)?;
    let d = etpn::synth::compile_source(&src).map_err(|e| e.to_string())?;
    let streams = parse_streams(args)?;
    let steps: u64 = flag_value(args, "--steps")
        .map(|v| v.parse().map_err(|e| format!("--steps: {e}")))
        .transpose()?
        .unwrap_or(100_000);
    let mut env = ScriptedEnv::new();
    for (name, values) in &streams {
        env = env.with_stream(name, values.iter().copied());
    }
    let workers: usize = flag_value(args, "--jobs")
        .map(|v| v.parse().map_err(|e| format!("--jobs: {e}")))
        .transpose()?
        .unwrap_or(0);
    let mut cfg = SaturationConfig::default();
    if let Some(v) = flag_value(args, "--batch") {
        cfg.batch_size = v.parse().map_err(|e| format!("--batch: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--stable") {
        cfg.stable_batches = v.parse().map_err(|e| format!("--stable: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--max-batches") {
        cfg.max_batches = v.parse().map_err(|e| format!("--max-batches: {e}"))?;
    }
    let strict = args.iter().any(|a| a == "--strict");

    let fleet = Fleet::new(workers);
    let outcome = fleet.run_saturation(
        |seed| {
            // Seed 0 is the deterministic reference; odd/even seeds then
            // alternate the two randomized policies so the sweep explores
            // both maximal-step and interleaved schedules.
            let policy = match seed {
                0 => FiringPolicy::MaximalStep,
                s if s % 2 == 1 => FiringPolicy::RandomMaximal { seed: s },
                s => FiringPolicy::SingleRandom { seed: s },
            };
            let mut job = SimJob::new(&d.etpn, env.clone())
                .with_policy(policy)
                .max_steps(steps);
            for (name, v) in &d.reg_inits {
                job = job.init_register(name, *v);
            }
            if strict {
                job = job.strict_inputs();
            }
            job
        },
        cfg,
    );
    println!(
        "saturation: {} batches × {} seeds = {} jobs, {} failures — {}",
        outcome.batches,
        cfg.batch_size,
        outcome.jobs,
        outcome.failures,
        if outcome.saturated {
            format!("saturated after {} stable batches", cfg.stable_batches)
        } else {
            "NOT saturated (hit --max-batches)".to_string()
        }
    );
    let Some(db) = &outcome.coverage else {
        return Err("every job failed; no coverage collected".into());
    };
    let (dead_p, dead_t) = etpn::lint::statically_dead(&d.etpn.ctl);
    let rep = full_report(&d.etpn, db, &dead_p, &dead_t);
    print!("{}", rep.text());

    if let Some(path) = flag_value(args, "--json") {
        std::fs::write(path, rep.json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--lcov") {
        let dead = etpn::cov::StaticDead::from_ids(&d.etpn, &dead_p, &dead_t);
        let design_path = args
            .iter()
            .find(|a| !a.starts_with('-'))
            .map_or("design.hdl", String::as_str);
        let line_of_place = |sp: etpn::core::PlaceId| {
            let span = d.src_map.place_span(sp);
            (!span.is_dummy()).then(|| etpn::lang::span::line_col(&src, span.start).0)
        };
        let line_of_trans = |t: etpn::core::TransId| {
            let span = d.src_map.trans_span(t);
            (!span.is_dummy()).then(|| etpn::lang::span::line_col(&src, span.start).0)
        };
        let text = etpn::cov::lcov(
            &d.etpn,
            db,
            &dead,
            design_path,
            &line_of_place,
            &line_of_trans,
        );
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--dot") {
        let heat = dot::ControlHeat {
            exit_counts: &db.place_exits,
            fire_counts: &db.trans_fired,
        };
        std::fs::write(path, dot::control_dot_heat(&d.etpn, &heat))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path} (coverage heat overlay)");
    }
    if let Some(pct) = flag_value(args, "--fail-under") {
        let pct: f64 = pct.parse().map_err(|e| format!("--fail-under: {e}"))?;
        if !rep.meets(pct) {
            eprintln!(
                "etpnc: coverage gate failed (exit {EXIT_COVERAGE}): places {:.1}%, transitions {:.1}% < {pct}%",
                rep.places.pct(),
                rep.transitions.pct()
            );
            return Ok(ExitCode::from(EXIT_COVERAGE));
        }
        println!(
            "coverage gate passed: places {:.1}%, transitions {:.1}% ≥ {pct}%",
            rep.places.pct(),
            rep.transitions.pct()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_dot(args: &[String]) -> Result<ExitCode, String> {
    let (_, src) = read_source(args)?;
    let d = etpn::synth::compile_source(&src).map_err(|e| e.to_string())?;
    if args.iter().any(|a| a == "--heat") {
        // Heat needs an execution: simulate with the provided streams and
        // grade the control net by the observed activity.
        let streams = parse_streams(args)?;
        let steps: u64 = flag_value(args, "--steps")
            .map(|v| v.parse().map_err(|e| format!("--steps: {e}")))
            .transpose()?
            .unwrap_or(100_000);
        let mut env = ScriptedEnv::new();
        for (name, values) in &streams {
            env = env.with_stream(name, values.iter().copied());
        }
        let mut sim = Simulator::new(&d.etpn, env);
        for (name, v) in &d.reg_inits {
            sim = sim.init_register(name, *v);
        }
        let trace = sim.run(steps).map_err(|e| e.describe(&d.etpn))?;
        let heat = dot::ControlHeat {
            exit_counts: &trace.exit_counts,
            fire_counts: &trace.fire_counts,
        };
        println!("{}", dot::datapath_dot(&d.etpn));
        println!("{}", dot::control_dot_heat(&d.etpn, &heat));
        return Ok(ExitCode::SUCCESS);
    }
    println!("{}", dot::datapath_dot(&d.etpn));
    println!("{}", dot::control_dot(&d.etpn));
    Ok(ExitCode::SUCCESS)
}
