//! # ETPN — a parallel computation model for digital hardware synthesis
//!
//! This crate is the facade of the `etpn` workspace, a full implementation of
//! the data/control-flow computation model of
//! *Zebo Peng, "Semantics of a Parallel Computation Model and its
//! Applications in Digital Hardware Design", Proc. ICPP 1988*, together with
//! the CAMAD-style transformational high-level-synthesis pipeline the paper
//! describes.
//!
//! The model (later known as **ETPN**, the Extended Timed Petri Net) couples
//!
//! * a **data path** — a directed port graph of registers, operators and I/O
//!   pads ([`core::DataPath`], paper Def. 2.1), with
//! * a **Petri-net control structure** whose marked places open data-path
//!   arcs and whose transitions are guarded by data-path conditions
//!   ([`core::Control`], Def. 2.2),
//!
//! and defines the *semantics* of a design as its **external event
//! structure** — the values it exchanges with the environment plus their
//! precedence/concurrency relations (Defs. 3.3–3.6). Two designs are
//! equivalent iff their external event structures coincide (Def. 4.1), which
//! licenses two families of internal rewrites:
//!
//! * **data-invariant** control rewrites (parallelisation, serialisation,
//!   reordering — Thm. 4.1) in [`transform::data_invariant`], and
//! * **control-invariant** data-path rewrites (vertex merger / resource
//!   sharing — Thm. 4.2) in [`transform::control_invariant`].
//!
//! ## Quick start
//!
//! ```
//! use etpn::prelude::*;
//!
//! // Build a two-state design: s0 loads `a+b` into a register, s1 writes it out.
//! let mut b = EtpnBuilder::new();
//! let a = b.input("a");
//! let c = b.input("b");
//! let add = b.operator(Op::Add, 2, "add");
//! let r = b.register("r");
//! let out = b.output("y");
//! let op_a = b.connect(b.out_port(a, 0), b.in_port(add, 0));
//! let op_b = b.connect(b.out_port(c, 0), b.in_port(add, 1));
//! let load = b.connect(b.out_port(add, 0), b.in_port(r, 0));
//! let emit = b.connect(b.out_port(r, 0), b.in_port(out, 0));
//! let s0 = b.place("s0");
//! let s1 = b.place("s1");
//! b.control(s0, [op_a, op_b, load]);
//! b.control(s1, [emit]);
//! b.seq(s0, s1, "t0");
//! let s_end = b.place("end");
//! b.seq(s1, s_end, "t1");
//! let fin = b.transition("fin");
//! b.flow_st(s_end, fin);
//! b.mark(s0);
//! let gamma = b.finish().expect("valid design");
//!
//! // Run it against a scripted environment.
//! let env = ScriptedEnv::new().with_stream("a", [3]).with_stream("b", [4]);
//! let trace = Simulator::new(&gamma, env).run(8).expect("simulation succeeds");
//! assert_eq!(trace.values_on_named_output(&gamma, "y"), vec![7]);
//! ```
//!
//! ## Workspace layout
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `etpn-core` | the model: data path, control net, events |
//! | [`sim`] | `etpn-sim` | operational semantics, traces, determinism tests |
//! | [`analysis`] | `etpn-analysis` | Def. 3.2 checks, data dependence, critical path |
//! | [`transform`] | `etpn-transform` | semantics-preserving rewrites + verification |
//! | [`lang`] | `etpn-lang` | behavioural HDL front-end |
//! | [`synth`] | `etpn-synth` | CAMAD-style synthesis pipeline |
//! | [`workloads`] | `etpn-workloads` | diffeq, EWF, FIR16, GCD, AR lattice, IIR, α–β, isqrt, random nets |
//! | [`lint`] | `etpn-lint` | whole-design static verifier: diagnostics, dead-code/race lints, SARIF |
//! | [`obs`] | `etpn-obs` | spans, counters, Chrome-trace/stats exporters |
//! | [`cov`] | `etpn-cov` | functional coverage: mergeable DBs, saturation, gated reports |

pub use etpn_analysis as analysis;
pub use etpn_core as core;
pub use etpn_cov as cov;
pub use etpn_lang as lang;
pub use etpn_lint as lint;
pub use etpn_obs as obs;
pub use etpn_sim as sim;
pub use etpn_synth as synth;
pub use etpn_transform as transform;
pub use etpn_workloads as workloads;

/// Convenience re-exports covering the common end-to-end flow.
pub mod prelude {
    pub use etpn_analysis::proper::{check_properly_designed, ProperReport};
    pub use etpn_core::{
        builder::EtpnBuilder, control::Control, datapath::DataPath, etpn::Etpn, op::Op,
        value::Value,
    };
    pub use etpn_sim::{engine::Simulator, env::ScriptedEnv, policy::FiringPolicy, trace::Trace};
    pub use etpn_synth::{
        module_lib::ModuleLibrary,
        optimizer::{Objective, Optimizer},
        pipeline::{compile_source, synthesize},
        verilog::verilog,
    };
    pub use etpn_transform::{
        control_invariant::merge::VertexMerger, data_invariant::parallelize::Parallelizer,
        history::Rewriter,
    };
    pub use etpn_workloads::{catalog, Workload};
}
